/**
 * @file
 * Single-pass multi-geometry cache simulation (Mattson et al.'s
 * stack algorithm, specialised to LRU + write-allocate).
 *
 * One traversal of a reference stream yields the exact hit/miss
 * (and write-back) counts of *every* cache in a set-count x
 * associativity grid that shares the line size and write policies.
 * The reduction: for true LRU with allocate-on-miss, the contents
 * of an (S sets, A ways) cache are exactly the A most recently
 * touched distinct lines of each set — so an access whose per-set
 * LRU stack distance is d hits in every geometry with A > d and
 * misses in every geometry with A <= d.  A histogram of distances
 * per set count therefore prices the whole associativity axis at
 * once, and one per-set stack per *distinct* set count prices the
 * size axis.
 *
 * Dirty state rides along with a single small integer per stack
 * entry: under write-back, "dirty in (S, A)" is monotone in A (a
 * larger A means the line was filled earlier, so it has seen every
 * store a smaller A has), so the minimum associativity at which the
 * line is dirty fully describes all grid geometries.
 *
 * The engine's results are bit-equal to running SetAssocCache per
 * geometry (see tests/test_random_validation.cc); sweepCacheSize
 * and exp::runGeometrySweep dispatch to it when the base config
 * qualifies (stackSimIneligibleReason()).
 */

#ifndef UATM_CACHE_STACK_SIM_HH
#define UATM_CACHE_STACK_SIM_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/cache.hh"
#include "cache/config.hh"
#include "trace/source.hh"
#include "util/status.hh"

namespace uatm {

/**
 * The geometry cross product one pass prices: every (setCount x
 * assoc) pair, all sharing one line size and one write policy.
 * Replacement is implicitly LRU — that is what makes the stack
 * reduction exact.
 */
struct GeometryGrid
{
    std::uint32_t lineBytes = 32;

    /** Distinct set counts (each a power of two, deduplicated). */
    std::vector<std::uint64_t> setCounts;

    /** Distinct associativities (deduplicated; any order). */
    std::vector<std::uint32_t> assocs;

    WritePolicy write = WritePolicy::WriteBack;

    /** Must be WriteAllocate: write-around store misses do not
     *  touch LRU state, which breaks the inclusion property the
     *  engine relies on. */
    WriteMissPolicy writeMiss = WriteMissPolicy::WriteAllocate;

    /** Add the (numSets, assoc) cell of @p config, deduplicating.
     *  The config's line size and policies must match the grid. */
    void addConfig(const CacheConfig &config);

    /** OK when every field is simulatable (powers of two, at
     *  least one cell, write-allocate). */
    Status validate() const;
};

/**
 * The per-geometry statistics produced by one pass.  Each cell
 * reconstructs a full CacheStats bit-equal to what SetAssocCache
 * would have counted for that geometry over the same stream.
 */
class GeometryHitSurface
{
  public:
    GeometryHitSurface() = default;
    GeometryHitSurface(const GeometryGrid &grid,
                       std::vector<CacheStats> cells);

    const GeometryGrid &grid() const { return grid_; }

    /** True when (sets, assoc) is a cell of the grid. */
    bool has(std::uint64_t sets, std::uint32_t assoc) const;

    /** Stats of one grid cell; asserts the cell exists. */
    const CacheStats &stats(std::uint64_t sets,
                            std::uint32_t assoc) const;

    /** Stats of @p config's geometry; InvalidArgument when the
     *  config is invalid, mismatches the grid's line size or
     *  policies, or its cell is not in the grid. */
    Expected<CacheStats> statsFor(const CacheConfig &config) const;

    /**
     * The post-warmup window: this surface's counters minus
     * @p warm's, field for field, mirroring runCacheSim's
     * subtraction exactly (including its quirk of leaving
     * storesToMemoryBytes cumulative).
     */
    GeometryHitSurface minus(const GeometryHitSurface &warm) const;

  private:
    GeometryGrid grid_;
    std::vector<CacheStats> cells_; ///< [space * assocs + assocIdx]

    std::size_t cellIndex(std::uint64_t sets,
                          std::uint32_t assoc) const;
};

/**
 * The engine proper.  Feed it references (in trace order), then
 * ask for the surface; runStackSim() below wraps the common case.
 */
class StackSimulator
{
  public:
    /** Throws StatusError when the grid fails validate(). */
    explicit StackSimulator(const GeometryGrid &grid);

    /** Apply one reference to every grid geometry at once. */
    void access(const MemoryReference &ref);

    /** Apply @p count references from @p refs in order. */
    void accessBatch(const MemoryReference *refs, std::size_t count);

    /** Same switch as SetAssocCache::setColdTracking. */
    void setColdTracking(bool enabled);

    /** Current cumulative per-geometry statistics. */
    GeometryHitSurface surface() const;

    const GeometryGrid &grid() const { return grid_; }

  private:
    /** One line of a per-set recency stack.  minDirtyAssoc is the
     *  smallest grid associativity at which the line is dirty
     *  (maxAssoc_+1 = clean in every geometry); dirtiness is
     *  monotone non-decreasing in A, so one threshold suffices. */
    struct StackEntry
    {
        Addr line;
        std::uint32_t minDirtyAssoc;
    };

    /** The state for one distinct set count. */
    struct SetSpace
    {
        std::uint64_t sets = 0;
        std::uint64_t setMask = 0;
        /** MRU-first truncated stacks: [set * maxAssoc_ + depth]. */
        std::vector<StackEntry> entries;
        /** Valid entries per set. */
        std::vector<std::uint32_t> filled;
        /** Distance histograms, one slot per distance 0..maxAssoc_
         *  (the last slot pools every distance >= maxAssoc_, which
         *  misses in all grid geometries). */
        std::vector<std::uint64_t> loadHist;
        std::vector<std::uint64_t> storeHist;
        /** Write-backs per grid associativity (ascending order). */
        std::vector<std::uint64_t> writebacks;
    };

    GeometryGrid grid_;
    std::uint32_t lineShift_ = 0;
    std::uint32_t maxAssoc_ = 0;
    /** Grid associativities sorted ascending (for early exit). */
    std::vector<std::uint32_t> ascAssocs_;
    std::vector<SetSpace> spaces_;

    // Geometry-independent counters (identical in every cell).
    std::uint64_t accesses_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t storeBytes_ = 0;
    std::uint64_t coldMisses_ = 0;
    bool trackCold_ = true;
    std::unordered_set<Addr> touchedLines_;
};

/**
 * Run @p refs references of @p source (reset first) through one
 * stack-simulation pass — the single-pass counterpart of calling
 * runCacheSim once per grid cell, with identical warmup-window and
 * cold-tracking semantics.  Consumes the source via fillBatch.
 */
GeometryHitSurface runStackSim(const GeometryGrid &grid,
                               TraceSource &source,
                               std::uint64_t refs,
                               std::uint64_t warmup_refs = 0);

/**
 * nullptr when @p base qualifies for the single-pass engine on a
 * size sweep (LRU replacement, write-allocate); otherwise a static
 * string naming the first disqualifying property.
 */
const char *stackSimIneligibleReason(const CacheConfig &base);

} // namespace uatm

#endif // UATM_CACHE_STACK_SIM_HH
