/**
 * @file
 * Functional set-associative cache model.
 *
 * Tracks hits, misses, fills and write-backs, and can summarise a
 * run directly in the paper's workload vocabulary {E, R, W, alpha}
 * (Table 1), which is what couples the simulator substrate to the
 * analytical tradeoff model in src/core.
 */

#ifndef UATM_CACHE_CACHE_HH
#define UATM_CACHE_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "trace/ref.hh"

namespace uatm::obs {
class StatRegistry;
} // namespace uatm::obs

namespace uatm {

/** What one cache access did. */
struct AccessOutcome
{
    /** Line-aligned address of the access. */
    Addr lineAddr = 0;

    /** The access hit in the cache. */
    bool hit = false;

    /** A line was brought in from memory (R grows by L bytes). */
    bool fill = false;

    /** A dirty line was evicted and must be flushed. */
    bool writeback = false;

    /** Line address of the flushed victim (valid iff writeback). */
    Addr victimLineAddr = 0;

    /** A valid line (dirty or clean) was displaced by the fill —
     *  what a victim buffer would capture. */
    bool evictedValid = false;

    /** Line address of the displaced line (valid iff
     *  evictedValid). */
    Addr evictedLineAddr = 0;

    /** The displaced line was dirty. */
    bool evictedDirty = false;

    /** A store bypassed the cache to memory (write-around miss,
     *  or any store under write-through). */
    bool storeToMemory = false;

    /** First-ever touch of this line address (compulsory miss). */
    bool coldMiss = false;
};

/** Aggregate counters for one cache instance. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t fills = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t storesToMemory = 0;
    /** Bytes carried by those stores, for converting W into bus
     *  transfers when a store is wider than the bus (Table 1's
     *  decomposition of W). */
    std::uint64_t storesToMemoryBytes = 0;
    std::uint64_t coldMisses = 0;
    /** Lines inserted by hardware prefetch (not demand fills). */
    std::uint64_t prefetchInserts = 0;
    /** Instructions E implied by the reference stream (gaps + refs). */
    std::uint64_t instructions = 0;

    double hitRatio() const;
    double missRatio() const;

    /** Bytes read from memory: fills * line size. */
    std::uint64_t bytesRead(std::uint32_t line_bytes) const;

    /** Bytes flushed: writebacks * line size. */
    std::uint64_t bytesFlushed(std::uint32_t line_bytes) const;

    /** Paper's flush ratio alpha = flushed bytes / read bytes. */
    double flushRatio(std::uint32_t line_bytes) const;

    /**
     * W in bus transfers: stores wider than the bus take
     * ceil(size/D) memory cycles (Table 1).  Assumes every store
     * to memory has the same size, which holds for the bundled
     * generators; exact when no store exceeds the bus.
     */
    double writeTransfers(std::uint32_t bus_width_bytes) const;

    /** Multi-line human-readable block. */
    std::string format(std::uint32_t line_bytes) const;

    /**
     * Register every counter plus the ratio formulas into the stat
     * registry under @p prefix (e.g. "cache" -> "cache.hits").
     */
    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix,
                       std::uint32_t line_bytes) const;
};

/** What a prefetch insertion did. */
struct PrefetchOutcome
{
    /** False when the line was already present (no-op). */
    bool inserted = false;

    /** A dirty victim was evicted and must be flushed. */
    bool writeback = false;

    /** Line address of the flushed victim (valid iff writeback). */
    Addr victimLineAddr = 0;
};

/** What a direct line installation did (victim-cache swaps). */
struct InstallOutcome
{
    /** False when the line was already present (no-op). */
    bool inserted = false;

    /** A valid line was displaced. */
    bool evictedValid = false;

    /** Line address of the displaced line. */
    Addr evictedLineAddr = 0;

    /** The displaced line was dirty. */
    bool evictedDirty = false;
};

/**
 * The cache proper.  Purely functional (no timing): the timing
 * engine in src/cpu layers stall behaviour on top of the outcomes
 * this model reports.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /** Apply one reference and report what happened. */
    AccessOutcome access(const MemoryReference &ref);

    /**
     * Insert the line holding @p addr without a demand reference
     * (hardware prefetch, paper Sec. 3.3's latency-hiding remark).
     * Counted in stats().prefetchInserts, not in fills; demand
     * statistics are untouched.
     */
    PrefetchOutcome prefetchLine(Addr addr);

    /**
     * Install the line holding @p addr with the given dirty state
     * and report the displaced line without counting any flush or
     * demand statistics — the mechanism a victim buffer uses to
     * swap lines back in.
     */
    InstallOutcome installLine(Addr addr, bool dirty);

    /** Hit test without updating replacement state or stats. */
    bool probe(Addr addr) const;

    /** True when the line holding @p addr is present and dirty. */
    bool probeDirty(Addr addr) const;

    /**
     * Evict everything; returns the number of dirty lines that
     * would be flushed.  Stats are not altered.
     */
    std::uint64_t invalidateAll();

    /** Restart: empty cache, zeroed statistics. */
    void reset();

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }

    /**
     * Enable or disable cold-miss tracking (keeps a hash set of all
     * line addresses ever touched; off for very long runs).
     */
    void setColdTracking(bool enabled);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig config_;
    std::uint64_t setMask_;
    std::uint32_t lineShift_;
    std::vector<Line> lines_; ///< [set * assoc + way]
    std::unique_ptr<ReplacementPolicy> replacement_;
    CacheStats stats_;
    bool trackCold_ = true;
    std::unordered_set<Addr> touchedLines_;

    std::uint64_t setIndex(Addr addr) const;
    Addr lineAddr(Addr addr) const;
    Line &line(std::uint64_t set, std::uint32_t way);
    const Line &line(std::uint64_t set, std::uint32_t way) const;

    /** Way holding @p addr in @p set, if any. */
    std::optional<std::uint32_t> findWay(std::uint64_t set,
                                         Addr line_addr) const;
};

} // namespace uatm

#endif // UATM_CACHE_CACHE_HH
