/**
 * @file
 * Victim cache (Jouppi, the paper's reference [7]): a small fully
 * associative buffer that catches lines evicted from the main
 * cache, turning conflict misses back into (near-)hits.
 *
 * In the tradeoff methodology's terms a victim cache is a cheap
 * way to buy hit ratio, so its benefit can be priced against bus
 * width / write buffers / pipelining through Eq. 6 — which is
 * exactly what bench_ablation_victim does.
 */

#ifndef UATM_CACHE_VICTIM_HH
#define UATM_CACHE_VICTIM_HH

#include <cstdint>
#include <list>
#include <string>

#include "cache/cache.hh"
#include "util/status.hh"

namespace uatm {

/** Victim-buffer configuration. */
struct VictimConfig
{
    /** Fully associative entries (Jouppi evaluated 1-15). */
    std::uint32_t entries = 4;

    /** OK for a realisable buffer; InvalidArgument otherwise. */
    Status validate() const;
};

/** Counters specific to the victim buffer. */
struct VictimStats
{
    /** Main-cache misses satisfied by the buffer (no memory
     *  traffic). */
    std::uint64_t victimHits = 0;

    /** Lines pushed into the buffer by main-cache evictions. */
    std::uint64_t insertions = 0;

    /** Dirty lines the buffer itself had to flush on overflow. */
    std::uint64_t writebacks = 0;
};

/**
 * A main cache plus victim buffer, presenting the same access
 * interface as SetAssocCache.  The AccessOutcome's `fill` remains
 * "line fetched from memory": victim hits set neither fill nor
 * hit=false... specifically:
 *
 *  - main hit:    hit = true (unchanged);
 *  - victim hit:  hit = false, fill = false, victimHit = via
 *                 stats; the line is swapped back into the main
 *                 cache with no memory traffic;
 *  - true miss:   hit = false, fill = true (memory fetch).
 */
class VictimCachedHierarchy
{
  public:
    VictimCachedHierarchy(const CacheConfig &main_config,
                          const VictimConfig &victim_config);

    /** Access; see the class comment for outcome semantics. */
    AccessOutcome access(const MemoryReference &ref);

    /** True when either level holds the line. */
    bool probe(Addr addr) const;

    void reset();

    const SetAssocCache &mainCache() const { return main_; }
    const VictimStats &victimStats() const { return victimStats_; }

    /** Hit ratio of the main cache alone. */
    double mainHitRatio() const;

    /**
     * Combined hit ratio counting victim hits as hits — the
     * quantity to feed into the tradeoff model.
     */
    double combinedHitRatio() const;

    std::string describe() const;

  private:
    struct VictimLine
    {
        Addr lineAddr;
        bool dirty;
    };

    SetAssocCache main_;
    VictimConfig victimConfig_;
    /** MRU at the front. */
    std::list<VictimLine> buffer_;
    VictimStats victimStats_;

    /** Push an evicted line; may flush the LRU entry. */
    void insertVictim(Addr line_addr, bool dirty);

    /** Remove and return the entry for @p line_addr, if held. */
    bool takeVictim(Addr line_addr, bool &dirty_out);
};

} // namespace uatm

#endif // UATM_CACHE_VICTIM_HH
