/**
 * @file
 * Per-set replacement policies for the set-associative cache model.
 */

#ifndef UATM_CACHE_REPLACEMENT_HH
#define UATM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/config.hh"
#include "util/random.hh"

namespace uatm {

/**
 * Victim selection and recency tracking across all sets.
 *
 * All policies must victimise an invalid way before a valid one;
 * the cache guarantees it only asks for a victim on a miss.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Record a hit or fill touching (set, way). */
    virtual void touch(std::uint64_t set, std::uint32_t way) = 0;

    /**
     * Choose the way to evict in @p set given the validity map
     * (true = holds a line).  Prefer invalid ways.
     */
    virtual std::uint32_t victim(std::uint64_t set,
                                 const std::vector<bool> &valid) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    /** Factory from a configuration. */
    static std::unique_ptr<ReplacementPolicy>
    create(const CacheConfig &config);
};

/** True least-recently-used via per-set recency stamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, std::uint32_t assoc);
    void touch(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set,
                         const std::vector<bool> &valid) override;
    void reset() override;

  private:
    std::uint32_t assoc_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_; ///< [set * assoc + way]
};

/** Round-robin eviction order, insertion-driven. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint64_t sets, std::uint32_t assoc);
    void touch(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set,
                         const std::vector<bool> &valid) override;
    void reset() override;

  private:
    std::uint32_t assoc_;
    std::vector<std::uint32_t> nextOut_; ///< per-set pointer
};

/** Uniform random eviction (deterministic from a seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint32_t assoc, std::uint64_t seed);
    void touch(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set,
                         const std::vector<bool> &valid) override;
    void reset() override;

  private:
    std::uint32_t assoc_;
    std::uint64_t seed_;
    Rng rng_;
};

/** Tree pseudo-LRU; requires power-of-two associativity. */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(std::uint64_t sets, std::uint32_t assoc);
    void touch(std::uint64_t set, std::uint32_t way) override;
    std::uint32_t victim(std::uint64_t set,
                         const std::vector<bool> &valid) override;
    void reset() override;

  private:
    std::uint32_t assoc_;
    std::uint32_t levels_;
    /** assoc-1 tree bits per set, heap layout. */
    std::vector<bool> bits_;

    std::size_t bitIndex(std::uint64_t set, std::uint32_t node) const;
};

} // namespace uatm

#endif // UATM_CACHE_REPLACEMENT_HH
