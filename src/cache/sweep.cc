/**
 * @file
 * Implementation of the cache sweep drivers.
 */

#include "cache/sweep.hh"

#include "obs/profile.hh"
#include "util/logging.hh"

namespace uatm {

CacheRunResult
runCacheSim(const CacheConfig &config, TraceSource &source,
            std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.run_sim");
    UATM_ASSERT(warmup_refs <= refs,
                "warmup longer than the whole run");
    source.reset();
    SetAssocCache cache(config);
    // Long runs don't need the cold-miss hash set.
    cache.setColdTracking(refs <= (1u << 22));

    for (std::uint64_t i = 0; i < warmup_refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }
    // Measure only the post-warmup window.
    const CacheStats warm = cache.stats();
    for (std::uint64_t i = warmup_refs; i < refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }

    CacheStats measured = cache.stats();
    measured.accesses -= warm.accesses;
    measured.loads -= warm.loads;
    measured.stores -= warm.stores;
    measured.hits -= warm.hits;
    measured.misses -= warm.misses;
    measured.loadMisses -= warm.loadMisses;
    measured.storeMisses -= warm.storeMisses;
    measured.fills -= warm.fills;
    measured.writebacks -= warm.writebacks;
    measured.storesToMemory -= warm.storesToMemory;
    measured.coldMisses -= warm.coldMisses;
    measured.instructions -= warm.instructions;

    return CacheRunResult{cache.config(), measured};
}

std::vector<SweepPoint>
sweepCacheSize(const CacheConfig &base, TraceSource &source,
               const std::vector<std::uint64_t> &sizes,
               std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_size");
    std::vector<SweepPoint> points;
    points.reserve(sizes.size());
    for (std::uint64_t size : sizes) {
        CacheConfig config = base;
        config.sizeBytes = size;
        const auto run = runCacheSim(config, source, refs,
                                     warmup_refs);
        points.push_back(SweepPoint{size, run.hitRatio(),
                                    run.missRatio(),
                                    run.flushRatio()});
    }
    return points;
}

std::vector<SweepPoint>
sweepLineSize(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint32_t> &line_sizes,
              std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_line");
    std::vector<SweepPoint> points;
    points.reserve(line_sizes.size());
    for (std::uint32_t line : line_sizes) {
        CacheConfig config = base;
        config.lineBytes = line;
        const auto run = runCacheSim(config, source, refs,
                                     warmup_refs);
        points.push_back(SweepPoint{line, run.hitRatio(),
                                    run.missRatio(),
                                    run.flushRatio()});
    }
    return points;
}

} // namespace uatm
