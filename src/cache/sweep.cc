/**
 * @file
 * Implementation of the cache sweep drivers.
 */

#include "cache/sweep.hh"

#include <atomic>

#include "cache/stack_sim.hh"
#include "obs/profile.hh"
#include "util/logging.hh"

namespace uatm {

namespace {

std::atomic<std::uint64_t> g_fastPathSweeps{0};
std::atomic<std::uint64_t> g_declinedSweeps{0};
std::atomic<std::uint64_t> g_perPointSweeps{0};

} // namespace

SweepDispatchCounters
sweepDispatchCounters()
{
    SweepDispatchCounters counters;
    counters.fastPath =
        g_fastPathSweeps.load(std::memory_order_relaxed);
    counters.declined =
        g_declinedSweeps.load(std::memory_order_relaxed);
    counters.perPoint =
        g_perPointSweeps.load(std::memory_order_relaxed);
    return counters;
}

void
resetSweepDispatchStats()
{
    g_fastPathSweeps.store(0, std::memory_order_relaxed);
    g_declinedSweeps.store(0, std::memory_order_relaxed);
    g_perPointSweeps.store(0, std::memory_order_relaxed);
}

void
noteSweepDispatch(bool fast_path, bool structural,
                  const std::string &reason)
{
    if (fast_path) {
        g_fastPathSweeps.fetch_add(1, std::memory_order_relaxed);
    } else if (structural) {
        g_perPointSweeps.fetch_add(1, std::memory_order_relaxed);
    } else {
        g_declinedSweeps.fetch_add(1, std::memory_order_relaxed);
        warn("geometry sweep fell back to per-point simulation: ",
             reason);
    }
}

CacheRunResult
runCacheSim(const CacheConfig &config, TraceSource &source,
            std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.run_sim");
    UATM_ASSERT(warmup_refs <= refs,
                "warmup longer than the whole run");
    source.reset();
    SetAssocCache cache(config);
    // Long runs don't need the cold-miss hash set.
    cache.setColdTracking(refs <= (1u << 22));

    for (std::uint64_t i = 0; i < warmup_refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }
    // Measure only the post-warmup window.
    const CacheStats warm = cache.stats();
    for (std::uint64_t i = warmup_refs; i < refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }

    CacheStats measured = cache.stats();
    measured.accesses -= warm.accesses;
    measured.loads -= warm.loads;
    measured.stores -= warm.stores;
    measured.hits -= warm.hits;
    measured.misses -= warm.misses;
    measured.loadMisses -= warm.loadMisses;
    measured.storeMisses -= warm.storeMisses;
    measured.fills -= warm.fills;
    measured.writebacks -= warm.writebacks;
    measured.storesToMemory -= warm.storesToMemory;
    measured.coldMisses -= warm.coldMisses;
    measured.instructions -= warm.instructions;

    return CacheRunResult{cache.config(), measured};
}

namespace {

/** Shared body of the two geometry sweeps: vary one knob, rerun. */
std::vector<SweepPoint>
sweepGeometry(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint64_t> &values,
              std::uint64_t refs, std::uint64_t warmup_refs,
              void (*set)(CacheConfig &, std::uint64_t))
{
    std::vector<SweepPoint> points;
    points.reserve(values.size());
    for (std::uint64_t value : values) {
        CacheConfig config = base;
        set(config, value);
        const auto run = runCacheSim(config, source, refs,
                                     warmup_refs);
        points.push_back(SweepPoint{value, run.hitRatio(),
                                    run.missRatio(),
                                    run.flushRatio()});
    }
    return points;
}

} // namespace

std::vector<SweepPoint>
sweepCacheSize(const CacheConfig &base, TraceSource &source,
               const std::vector<std::uint64_t> &sizes,
               std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_size");
    if (sizes.empty())
        return {};
    if (const char *reason = stackSimIneligibleReason(base)) {
        noteSweepDispatch(false, false, reason);
        return sweepGeometry(
            base, source, sizes, refs, warmup_refs,
            [](CacheConfig &config, std::uint64_t v) {
                config.sizeBytes = v;
            });
    }

    // Single-pass fast path: all points share line size and
    // policies and differ only in set count, so one stack pass
    // prices every size at once.  An invalid size throws the same
    // StatusError the per-point path's cache constructor would.
    GeometryGrid grid;
    grid.lineBytes = base.lineBytes;
    grid.write = base.write;
    grid.writeMiss = base.writeMiss;
    std::vector<CacheConfig> configs;
    configs.reserve(sizes.size());
    for (std::uint64_t size : sizes) {
        CacheConfig config = base;
        config.sizeBytes = size;
        okOrThrow(config.validate());
        grid.addConfig(config);
        configs.push_back(config);
    }
    noteSweepDispatch(true, false, {});

    const GeometryHitSurface surface =
        runStackSim(grid, source, refs, warmup_refs);
    std::vector<SweepPoint> points;
    points.reserve(sizes.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const CacheRunResult run{
            configs[i],
            surface.stats(configs[i].numSets(),
                          configs[i].assoc)};
        points.push_back(SweepPoint{sizes[i], run.hitRatio(),
                                    run.missRatio(),
                                    run.flushRatio()});
    }
    return points;
}

std::vector<SweepPoint>
sweepLineSize(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint32_t> &line_sizes,
              std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_line");
    // Varying the line size changes the reference -> line mapping
    // itself, which the stack reduction cannot share; the line
    // axis is per-point by design, not a decline.
    noteSweepDispatch(false, true, {});
    std::vector<std::uint64_t> values(line_sizes.begin(),
                                      line_sizes.end());
    return sweepGeometry(base, source, values, refs, warmup_refs,
                         [](CacheConfig &config, std::uint64_t v) {
                             config.lineBytes =
                                 static_cast<std::uint32_t>(v);
                         });
}

} // namespace uatm
