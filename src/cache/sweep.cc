/**
 * @file
 * Implementation of the cache sweep drivers.
 */

#include "cache/sweep.hh"

#include "obs/profile.hh"
#include "util/logging.hh"

namespace uatm {

CacheRunResult
runCacheSim(const CacheConfig &config, TraceSource &source,
            std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.run_sim");
    UATM_ASSERT(warmup_refs <= refs,
                "warmup longer than the whole run");
    source.reset();
    SetAssocCache cache(config);
    // Long runs don't need the cold-miss hash set.
    cache.setColdTracking(refs <= (1u << 22));

    for (std::uint64_t i = 0; i < warmup_refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }
    // Measure only the post-warmup window.
    const CacheStats warm = cache.stats();
    for (std::uint64_t i = warmup_refs; i < refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        cache.access(*ref);
    }

    CacheStats measured = cache.stats();
    measured.accesses -= warm.accesses;
    measured.loads -= warm.loads;
    measured.stores -= warm.stores;
    measured.hits -= warm.hits;
    measured.misses -= warm.misses;
    measured.loadMisses -= warm.loadMisses;
    measured.storeMisses -= warm.storeMisses;
    measured.fills -= warm.fills;
    measured.writebacks -= warm.writebacks;
    measured.storesToMemory -= warm.storesToMemory;
    measured.coldMisses -= warm.coldMisses;
    measured.instructions -= warm.instructions;

    return CacheRunResult{cache.config(), measured};
}

namespace {

/** Shared body of the two geometry sweeps: vary one knob, rerun. */
std::vector<SweepPoint>
sweepGeometry(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint64_t> &values,
              std::uint64_t refs, std::uint64_t warmup_refs,
              void (*set)(CacheConfig &, std::uint64_t))
{
    std::vector<SweepPoint> points;
    points.reserve(values.size());
    for (std::uint64_t value : values) {
        CacheConfig config = base;
        set(config, value);
        const auto run = runCacheSim(config, source, refs,
                                     warmup_refs);
        points.push_back(SweepPoint{value, run.hitRatio(),
                                    run.missRatio(),
                                    run.flushRatio()});
    }
    return points;
}

} // namespace

std::vector<SweepPoint>
sweepCacheSize(const CacheConfig &base, TraceSource &source,
               const std::vector<std::uint64_t> &sizes,
               std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_size");
    return sweepGeometry(base, source, sizes, refs, warmup_refs,
                         [](CacheConfig &config, std::uint64_t v) {
                             config.sizeBytes = v;
                         });
}

std::vector<SweepPoint>
sweepLineSize(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint32_t> &line_sizes,
              std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.sweep_line");
    std::vector<std::uint64_t> values(line_sizes.begin(),
                                      line_sizes.end());
    return sweepGeometry(base, source, values, refs, warmup_refs,
                         [](CacheConfig &config, std::uint64_t v) {
                             config.lineBytes =
                                 static_cast<std::uint32_t>(v);
                         });
}

} // namespace uatm
