/**
 * @file
 * Implementation of the set-associative cache model.
 */

#include "cache/cache.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm {

double
CacheStats::hitRatio() const
{
    return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                    : 0.0;
}

double
CacheStats::missRatio() const
{
    return accesses ? 1.0 - hitRatio() : 0.0;
}

std::uint64_t
CacheStats::bytesRead(std::uint32_t line_bytes) const
{
    return fills * line_bytes;
}

std::uint64_t
CacheStats::bytesFlushed(std::uint32_t line_bytes) const
{
    return writebacks * line_bytes;
}

double
CacheStats::writeTransfers(std::uint32_t bus_width_bytes) const
{
    if (storesToMemory == 0)
        return 0.0;
    const double avg_bytes =
        static_cast<double>(storesToMemoryBytes) /
        static_cast<double>(storesToMemory);
    const double transfers_per_store = std::max(
        1.0, avg_bytes / static_cast<double>(bus_width_bytes));
    return transfers_per_store *
           static_cast<double>(storesToMemory);
}

double
CacheStats::flushRatio(std::uint32_t line_bytes) const
{
    const auto read = bytesRead(line_bytes);
    if (read == 0)
        return 0.0;
    return static_cast<double>(bytesFlushed(line_bytes)) /
           static_cast<double>(read);
}

std::string
CacheStats::format(std::uint32_t line_bytes) const
{
    std::ostringstream os;
    os << "  accesses     = " << accesses << '\n'
       << "  hits         = " << hits << '\n'
       << "  misses       = " << misses << " (load " << loadMisses
       << ", store " << storeMisses << ", cold " << coldMisses
       << ")\n"
       << "  hit ratio    = " << hitRatio() << '\n'
       << "  fills        = " << fills << " (R = "
       << bytesRead(line_bytes) << " bytes)\n"
       << "  writebacks   = " << writebacks << " (alpha = "
       << flushRatio(line_bytes) << ")\n"
       << "  stores->mem  = " << storesToMemory << '\n'
       << "  instructions = " << instructions << '\n';
    return os.str();
}

// Drift guard: keep registerStats() (and format()) in sync with
// the field list.  Adjust the count when adding counters.
static_assert(sizeof(CacheStats) == 14 * sizeof(std::uint64_t),
              "CacheStats changed: update registerStats()");

void
CacheStats::registerStats(obs::StatRegistry &registry,
                          const std::string &prefix,
                          std::uint32_t line_bytes) const
{
    const obs::StatGroup root(registry, prefix);
    const auto s = [](std::uint64_t v) {
        return static_cast<double>(v);
    };

    root.addScalar("accesses", s(accesses),
                   "references applied", "count");
    root.addScalar("loads", s(loads), "load references", "count");
    root.addScalar("stores", s(stores), "store references",
                   "count");
    root.addScalar("hits", s(hits), "cache hits", "count");
    root.addScalar("misses", s(misses), "cache misses", "count");
    root.addScalar("load_misses", s(loadMisses), "load misses",
                   "count");
    root.addScalar("store_misses", s(storeMisses), "store misses",
                   "count");
    root.addScalar("fills", s(fills), "demand line fills",
                   "count");
    root.addScalar("writebacks", s(writebacks),
                   "dirty lines flushed on eviction", "count");
    root.addScalar("stores_to_memory", s(storesToMemory),
                   "stores sent past the cache to memory",
                   "count");
    root.addScalar("stores_to_memory_bytes",
                   s(storesToMemoryBytes),
                   "bytes carried by stores to memory", "bytes");
    root.addScalar("cold_misses", s(coldMisses),
                   "first-touch (compulsory) misses", "count");
    root.addScalar("prefetch_inserts", s(prefetchInserts),
                   "lines inserted by hardware prefetch", "count");
    root.addScalar("instructions", s(instructions),
                   "instructions E implied by the stream",
                   "count");

    const obs::StatGroup derived = root.group("derived");
    derived.addFormula("hit_ratio", [copy = *this] {
        return copy.hitRatio();
    }, "hits / accesses", "ratio");
    derived.addFormula("miss_ratio", [copy = *this] {
        return copy.missRatio();
    }, "misses / accesses", "ratio");
    derived.addFormula("flush_ratio",
                       [copy = *this, line_bytes] {
        return copy.flushRatio(line_bytes);
    }, "paper's alpha: flushed bytes / read bytes", "ratio");
    derived.addFormula("bytes_read", [copy = *this, line_bytes] {
        return static_cast<double>(copy.bytesRead(line_bytes));
    }, "fills * line size (R)", "bytes");
    derived.addFormula("bytes_flushed",
                       [copy = *this, line_bytes] {
        return static_cast<double>(copy.bytesFlushed(line_bytes));
    }, "writebacks * line size", "bytes");
}

SetAssocCache::SetAssocCache(const CacheConfig &config)
    : config_(config)
{
    okOrThrow(config_.validate());
    setMask_ = config_.numSets() - 1;
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(
            config_.lineBytes)));
    lines_.resize(config_.numLines());
    replacement_ = ReplacementPolicy::create(config_);
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & setMask_;
}

Addr
SetAssocCache::lineAddr(Addr addr) const
{
    return addr & ~static_cast<Addr>(config_.lineBytes - 1);
}

SetAssocCache::Line &
SetAssocCache::line(std::uint64_t set, std::uint32_t way)
{
    return lines_[set * config_.assoc + way];
}

const SetAssocCache::Line &
SetAssocCache::line(std::uint64_t set, std::uint32_t way) const
{
    return lines_[set * config_.assoc + way];
}

std::optional<std::uint32_t>
SetAssocCache::findWay(std::uint64_t set, Addr line_addr) const
{
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.tag == line_addr)
            return w;
    }
    return std::nullopt;
}

AccessOutcome
SetAssocCache::access(const MemoryReference &ref)
{
    UATM_ASSERT(isValidAccessSize(ref.size),
                "invalid access size ", int(ref.size));
    UATM_ASSERT(ref.size <= config_.lineBytes,
                "access size exceeds the line size");

    AccessOutcome out;
    const Addr laddr = lineAddr(ref.addr);
    const std::uint64_t set = setIndex(ref.addr);
    out.lineAddr = laddr;

    const bool is_store = ref.kind == RefKind::Store;
    ++stats_.accesses;
    stats_.instructions += static_cast<std::uint64_t>(ref.gap) + 1;
    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    if (trackCold_)
        out.coldMiss = touchedLines_.insert(laddr).second;

    if (auto way = findWay(set, laddr)) {
        // Hit.
        out.hit = true;
        out.coldMiss = false;
        ++stats_.hits;
        replacement_->touch(set, *way);
        if (is_store) {
            if (config_.write == WritePolicy::WriteBack) {
                line(set, *way).dirty = true;
            } else {
                out.storeToMemory = true;
                ++stats_.storesToMemory;
                stats_.storesToMemoryBytes += ref.size;
            }
        }
        return out;
    }

    // Miss.
    ++stats_.misses;
    if (is_store)
        ++stats_.storeMisses;
    else
        ++stats_.loadMisses;
    if (out.coldMiss)
        ++stats_.coldMisses;

    const bool allocate =
        !is_store || config_.writeMiss == WriteMissPolicy::WriteAllocate;

    if (!allocate) {
        // Write-around store miss: goes straight to memory.
        out.storeToMemory = true;
        ++stats_.storesToMemory;
        stats_.storesToMemoryBytes += ref.size;
        return out;
    }

    // Choose a victim and fill.
    std::vector<bool> valid(config_.assoc);
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        valid[w] = line(set, w).valid;
    const std::uint32_t victim = replacement_->victim(set, valid);
    UATM_ASSERT(victim < config_.assoc, "replacement returned way ",
                victim, " >= assoc ", config_.assoc);

    Line &slot = line(set, victim);
    if (slot.valid) {
        out.evictedValid = true;
        out.evictedLineAddr = slot.tag;
        out.evictedDirty = slot.dirty;
        if (slot.dirty) {
            out.writeback = true;
            out.victimLineAddr = slot.tag;
            ++stats_.writebacks;
        }
    }

    slot.tag = laddr;
    slot.valid = true;
    slot.dirty = false;
    out.fill = true;
    ++stats_.fills;
    replacement_->touch(set, victim);

    if (is_store) {
        if (config_.write == WritePolicy::WriteBack) {
            slot.dirty = true;
        } else {
            out.storeToMemory = true;
            ++stats_.storesToMemory;
            stats_.storesToMemoryBytes += ref.size;
        }
    }
    return out;
}

PrefetchOutcome
SetAssocCache::prefetchLine(Addr addr)
{
    const InstallOutcome installed = installLine(addr, false);
    PrefetchOutcome out;
    out.inserted = installed.inserted;
    if (installed.evictedValid && installed.evictedDirty) {
        out.writeback = true;
        out.victimLineAddr = installed.evictedLineAddr;
        ++stats_.writebacks;
    }
    if (installed.inserted)
        ++stats_.prefetchInserts;
    return out;
}

InstallOutcome
SetAssocCache::installLine(Addr addr, bool dirty)
{
    InstallOutcome out;
    const Addr laddr = lineAddr(addr);
    const std::uint64_t set = setIndex(addr);
    if (findWay(set, laddr))
        return out; // already resident: nothing to do

    std::vector<bool> valid(config_.assoc);
    for (std::uint32_t w = 0; w < config_.assoc; ++w)
        valid[w] = line(set, w).valid;
    const std::uint32_t victim = replacement_->victim(set, valid);
    UATM_ASSERT(victim < config_.assoc,
                "replacement returned way ", victim,
                " >= assoc ", config_.assoc);

    Line &slot = line(set, victim);
    if (slot.valid) {
        out.evictedValid = true;
        out.evictedLineAddr = slot.tag;
        out.evictedDirty = slot.dirty;
    }
    slot.tag = laddr;
    slot.valid = true;
    slot.dirty = dirty;
    out.inserted = true;
    replacement_->touch(set, victim);
    return out;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findWay(setIndex(addr), lineAddr(addr)).has_value();
}

bool
SetAssocCache::probeDirty(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr laddr = lineAddr(addr);
    if (auto way = findWay(set, laddr))
        return line(set, *way).dirty;
    return false;
}

std::uint64_t
SetAssocCache::invalidateAll()
{
    std::uint64_t dirty = 0;
    for (auto &l : lines_) {
        if (l.valid && l.dirty)
            ++dirty;
        l = Line{};
    }
    replacement_->reset();
    return dirty;
}

void
SetAssocCache::reset()
{
    invalidateAll();
    stats_ = CacheStats{};
    touchedLines_.clear();
}

void
SetAssocCache::setColdTracking(bool enabled)
{
    trackCold_ = enabled;
    if (!enabled)
        touchedLines_.clear();
}

} // namespace uatm
