/**
 * @file
 * Implementation of the single-pass stack-distance engine.
 */

#include "cache/stack_sim.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "obs/profile.hh"
#include "util/logging.hh"

namespace uatm {

namespace {

/** References pulled per fillBatch call in runStackSim. */
constexpr std::size_t kBatchRefs = 2048;

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

// --------------------------------------------------------------------
// GeometryGrid
// --------------------------------------------------------------------

void
GeometryGrid::addConfig(const CacheConfig &config)
{
    UATM_ASSERT(config.lineBytes == lineBytes,
                "grid line size ", lineBytes,
                " != config line size ", config.lineBytes);
    UATM_ASSERT(config.write == write &&
                    config.writeMiss == writeMiss,
                "config write policies mismatch the grid");
    const std::uint64_t sets = config.numSets();
    if (std::find(setCounts.begin(), setCounts.end(), sets) ==
        setCounts.end())
        setCounts.push_back(sets);
    if (std::find(assocs.begin(), assocs.end(), config.assoc) ==
        assocs.end())
        assocs.push_back(config.assoc);
}

Status
GeometryGrid::validate() const
{
    if (lineBytes < 4 || !isPow2(lineBytes))
        return Status::invalidArgument(
            "grid line size ", lineBytes,
            " is not a power of two >= 4");
    if (setCounts.empty())
        return Status::invalidArgument("grid has no set counts");
    if (assocs.empty())
        return Status::invalidArgument(
            "grid has no associativities");
    for (std::uint64_t sets : setCounts) {
        if (!isPow2(sets))
            return Status::invalidArgument(
                "grid set count ", sets,
                " is not a power of two");
    }
    for (std::uint32_t assoc : assocs) {
        if (assoc == 0)
            return Status::invalidArgument(
                "grid associativity must be positive");
    }
    if (writeMiss != WriteMissPolicy::WriteAllocate)
        return Status::invalidArgument(
            "the stack engine requires write-allocate "
            "(write-around misses bypass LRU state)");
    return Status();
}

// --------------------------------------------------------------------
// GeometryHitSurface
// --------------------------------------------------------------------

GeometryHitSurface::GeometryHitSurface(const GeometryGrid &grid,
                                       std::vector<CacheStats> cells)
    : grid_(grid), cells_(std::move(cells))
{
    UATM_ASSERT(cells_.size() ==
                    grid_.setCounts.size() * grid_.assocs.size(),
                "surface cell count mismatches the grid");
}

std::size_t
GeometryHitSurface::cellIndex(std::uint64_t sets,
                              std::uint32_t assoc) const
{
    const auto space = std::find(grid_.setCounts.begin(),
                                 grid_.setCounts.end(), sets);
    const auto way = std::find(grid_.assocs.begin(),
                               grid_.assocs.end(), assoc);
    if (space == grid_.setCounts.end() ||
        way == grid_.assocs.end())
        return cells_.size();
    return static_cast<std::size_t>(space -
                                    grid_.setCounts.begin()) *
               grid_.assocs.size() +
           static_cast<std::size_t>(way - grid_.assocs.begin());
}

bool
GeometryHitSurface::has(std::uint64_t sets,
                        std::uint32_t assoc) const
{
    return cellIndex(sets, assoc) < cells_.size();
}

const CacheStats &
GeometryHitSurface::stats(std::uint64_t sets,
                          std::uint32_t assoc) const
{
    const std::size_t index = cellIndex(sets, assoc);
    UATM_ASSERT(index < cells_.size(), "geometry (", sets,
                " sets, ", assoc, "-way) is not in the grid");
    return cells_[index];
}

Expected<CacheStats>
GeometryHitSurface::statsFor(const CacheConfig &config) const
{
    if (Status status = config.validate(); !status.ok())
        return status;
    if (config.lineBytes != grid_.lineBytes ||
        config.write != grid_.write ||
        config.writeMiss != grid_.writeMiss)
        return Status::invalidArgument(
            "config line size or write policies mismatch the "
            "simulated grid");
    if (config.replacement != ReplacementKind::LRU)
        return Status::invalidArgument(
            "the surface models LRU replacement only");
    const std::size_t index =
        cellIndex(config.numSets(), config.assoc);
    if (index >= cells_.size())
        return Status::notFound("geometry (", config.numSets(),
                                " sets, ", config.assoc,
                                "-way) is not in the grid");
    return cells_[index];
}

GeometryHitSurface
GeometryHitSurface::minus(const GeometryHitSurface &warm) const
{
    UATM_ASSERT(cells_.size() == warm.cells_.size(),
                "surface subtraction over mismatched grids");
    std::vector<CacheStats> cells = cells_;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CacheStats &w = warm.cells_[i];
        CacheStats &m = cells[i];
        // Same field list runCacheSim subtracts — note that it
        // leaves storesToMemoryBytes (and prefetchInserts)
        // cumulative, and bit-equality with the per-geometry path
        // requires mirroring that.
        m.accesses -= w.accesses;
        m.loads -= w.loads;
        m.stores -= w.stores;
        m.hits -= w.hits;
        m.misses -= w.misses;
        m.loadMisses -= w.loadMisses;
        m.storeMisses -= w.storeMisses;
        m.fills -= w.fills;
        m.writebacks -= w.writebacks;
        m.storesToMemory -= w.storesToMemory;
        m.coldMisses -= w.coldMisses;
        m.instructions -= w.instructions;
    }
    return GeometryHitSurface(grid_, std::move(cells));
}

// --------------------------------------------------------------------
// StackSimulator
// --------------------------------------------------------------------

StackSimulator::StackSimulator(const GeometryGrid &grid)
    : grid_(grid)
{
    okOrThrow(grid_.validate());
    lineShift_ = static_cast<std::uint32_t>(std::countr_zero(
        static_cast<std::uint64_t>(grid_.lineBytes)));
    maxAssoc_ =
        *std::max_element(grid_.assocs.begin(), grid_.assocs.end());
    ascAssocs_ = grid_.assocs;
    std::sort(ascAssocs_.begin(), ascAssocs_.end());

    spaces_.resize(grid_.setCounts.size());
    for (std::size_t i = 0; i < spaces_.size(); ++i) {
        SetSpace &space = spaces_[i];
        space.sets = grid_.setCounts[i];
        space.setMask = space.sets - 1;
        space.entries.resize(space.sets * maxAssoc_);
        space.filled.assign(space.sets, 0);
        space.loadHist.assign(maxAssoc_ + 1, 0);
        space.storeHist.assign(maxAssoc_ + 1, 0);
        space.writebacks.assign(ascAssocs_.size(), 0);
    }
}

void
StackSimulator::setColdTracking(bool enabled)
{
    trackCold_ = enabled;
    if (!enabled)
        touchedLines_.clear();
}

void
StackSimulator::access(const MemoryReference &ref)
{
    // Same input contract as SetAssocCache::access.
    UATM_ASSERT(isValidAccessSize(ref.size),
                "invalid access size ", int(ref.size));
    UATM_ASSERT(ref.size <= grid_.lineBytes,
                "access size exceeds the line size");

    const Addr line = ref.addr >> lineShift_;
    const bool is_store = ref.kind == RefKind::Store;

    ++accesses_;
    instructions_ += static_cast<std::uint64_t>(ref.gap) + 1;
    if (is_store) {
        ++stores_;
        storeBytes_ += ref.size;
    } else {
        ++loads_;
    }
    if (trackCold_ && touchedLines_.insert(line).second)
        ++coldMisses_; // first touch misses in every geometry

    const bool write_back = grid_.write == WritePolicy::WriteBack;
    const std::uint32_t clean = maxAssoc_ + 1;

    for (SetSpace &space : spaces_) {
        const std::uint64_t set = line & space.setMask;
        StackEntry *ways = &space.entries[set * maxAssoc_];
        const std::uint32_t filled = space.filled[set];

        std::uint32_t pos = 0;
        while (pos < filled && ways[pos].line != line)
            ++pos;
        const bool found = pos < filled;

        // Distance = lines of this set touched since the last
        // access to `line` (clamped: >= maxAssoc_ misses in every
        // grid geometry).  Hit in (S, A) iff distance < A.
        const std::uint32_t dist = found ? pos : maxAssoc_;
        ++(is_store ? space.storeHist : space.loadHist)[dist];

        // The access moves `line` to depth 1; entries at depths
        // 1..evict_limit each sink one step, and the one at depth
        // A leaves geometry (S, A)'s resident top-A — a genuine
        // eviction there (the cache is full: A <= filled).  Count
        // the write-back when the evictee is dirty at that A.
        const std::uint32_t evict_limit = found ? pos : filled;
        if (write_back) {
            for (std::size_t k = 0; k < ascAssocs_.size(); ++k) {
                const std::uint32_t assoc = ascAssocs_[k];
                if (assoc > evict_limit)
                    break;
                if (ways[assoc - 1].minDirtyAssoc <= assoc)
                    ++space.writebacks[k];
            }
        }

        // New dirty threshold for `line` at depth 1:
        //  - store: hit (A > dist) dirties, and a write-allocate
        //    store fill (A <= dist) dirties too -> dirty for all A;
        //  - load hit region (A > dist): prior state carries over;
        //  - load fill region (A <= dist): filled clean.
        std::uint32_t min_dirty;
        if (!write_back)
            min_dirty = clean; // write-through never dirties
        else if (is_store)
            min_dirty = 1;
        else if (found)
            min_dirty =
                std::max(ways[pos].minDirtyAssoc, dist + 1);
        else
            min_dirty = clean;

        const std::uint32_t shifted =
            found ? pos : std::min(filled, maxAssoc_ - 1);
        if (shifted > 0)
            std::memmove(ways + 1, ways,
                         shifted * sizeof(StackEntry));
        ways[0] = StackEntry{line, min_dirty};
        if (!found && filled < maxAssoc_)
            space.filled[set] = filled + 1;
    }
}

void
StackSimulator::accessBatch(const MemoryReference *refs,
                            std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        access(refs[i]);
}

GeometryHitSurface
StackSimulator::surface() const
{
    const bool write_back = grid_.write == WritePolicy::WriteBack;
    std::vector<CacheStats> cells;
    cells.reserve(grid_.setCounts.size() * grid_.assocs.size());

    for (const SetSpace &space : spaces_) {
        for (std::uint32_t assoc : grid_.assocs) {
            CacheStats stats;
            stats.accesses = accesses_;
            stats.loads = loads_;
            stats.stores = stores_;
            stats.instructions = instructions_;
            stats.coldMisses = coldMisses_;

            // Misses = accesses at distance >= assoc (clamped
            // histogram: the pool slot maxAssoc_ is >= assoc too).
            std::uint64_t load_misses = 0;
            std::uint64_t store_misses = 0;
            for (std::uint32_t d = std::min(assoc, maxAssoc_);
                 d <= maxAssoc_; ++d) {
                load_misses += space.loadHist[d];
                store_misses += space.storeHist[d];
            }
            stats.loadMisses = load_misses;
            stats.storeMisses = store_misses;
            stats.misses = load_misses + store_misses;
            stats.hits = stats.accesses - stats.misses;
            // Write-allocate: every miss demand-fills a line.
            stats.fills = stats.misses;

            if (write_back) {
                const auto k = static_cast<std::size_t>(
                    std::find(ascAssocs_.begin(), ascAssocs_.end(),
                              assoc) -
                    ascAssocs_.begin());
                stats.writebacks = space.writebacks[k];
            } else {
                // Write-through: every store (hit or filled miss)
                // goes to memory; nothing is ever dirty.
                stats.storesToMemory = stores_;
                stats.storesToMemoryBytes = storeBytes_;
            }
            cells.push_back(stats);
        }
    }
    return GeometryHitSurface(grid_, std::move(cells));
}

// --------------------------------------------------------------------
// runStackSim
// --------------------------------------------------------------------

GeometryHitSurface
runStackSim(const GeometryGrid &grid, TraceSource &source,
            std::uint64_t refs, std::uint64_t warmup_refs)
{
    UATM_PROFILE_SCOPE("cache.stack_sim");
    UATM_ASSERT(warmup_refs <= refs,
                "warmup longer than the whole run");
    source.reset();
    StackSimulator sim(grid);
    // Same switch point as runCacheSim.
    sim.setColdTracking(refs <= (1u << 22));

    MemoryReference buffer[kBatchRefs];
    bool exhausted = false;
    std::uint64_t consumed = 0;
    const auto pump = [&](std::uint64_t until) {
        while (!exhausted && consumed < until) {
            const auto want = static_cast<std::size_t>(
                std::min<std::uint64_t>(kBatchRefs,
                                        until - consumed));
            const std::size_t got =
                source.fillBatch(buffer, want);
            sim.accessBatch(buffer, got);
            consumed += got;
            exhausted = got < want;
        }
    };

    pump(warmup_refs);
    // Measure only the post-warmup window.
    const GeometryHitSurface warm = sim.surface();
    pump(refs);
    return sim.surface().minus(warm);
}

const char *
stackSimIneligibleReason(const CacheConfig &base)
{
    if (base.replacement != ReplacementKind::LRU)
        return "replacement policy is not LRU";
    if (base.writeMiss != WriteMissPolicy::WriteAllocate)
        return "write-miss policy is not write-allocate";
    return nullptr;
}

} // namespace uatm
