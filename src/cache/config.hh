/**
 * @file
 * Cache geometry and policy configuration.
 */

#ifndef UATM_CACHE_CONFIG_HH
#define UATM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace uatm {

/**
 * How write misses are handled (paper Sec. 3.1): WriteAllocate reads
 * the line in before writing (store misses contribute to R, W = 0);
 * WriteAround sends the write to memory without allocating (store
 * misses contribute to W).
 */
enum class WriteMissPolicy : std::uint8_t
{
    WriteAllocate,
    WriteAround,
};

/** Write-hit handling. */
enum class WritePolicy : std::uint8_t
{
    WriteBack,    ///< dirty lines flushed on eviction (paper default)
    WriteThrough, ///< every store also goes to memory
};

/** Replacement policy selector. */
enum class ReplacementKind : std::uint8_t
{
    LRU,
    FIFO,
    Random,
    TreePLRU,
};

const char *writeMissPolicyName(WriteMissPolicy policy);
const char *writePolicyName(WritePolicy policy);
const char *replacementKindName(ReplacementKind kind);

/**
 * Geometry + policies of one cache.  The paper's Figure 1 runs use
 * 8 KB, 2-way, 32-byte lines, write-allocate, write-back.
 */
struct CacheConfig
{
    std::uint64_t sizeBytes = 8 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 32;
    WriteMissPolicy writeMiss = WriteMissPolicy::WriteAllocate;
    WritePolicy write = WritePolicy::WriteBack;
    ReplacementKind replacement = ReplacementKind::LRU;
    /** Seed for the Random replacement policy. */
    std::uint64_t replacementSeed = 1;

    /** Number of sets implied by the geometry. */
    std::uint64_t numSets() const;

    /** Total lines in the cache. */
    std::uint64_t numLines() const;

    /** OK when the geometry is realisable (powers of two, assoc
     *  divides capacity, line >= 4 bytes); InvalidArgument with
     *  the first violation otherwise. */
    Status validate() const;

    /** "8KB 2-way 32B WA/WB LRU" style summary. */
    std::string describe() const;
};

} // namespace uatm

#endif // UATM_CACHE_CONFIG_HH
