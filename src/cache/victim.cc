/**
 * @file
 * Implementation of the victim-cache hierarchy.
 */

#include "cache/victim.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

Status
VictimConfig::validate() const
{
    if (entries == 0) {
        return Status::invalidArgument(
            "a victim cache needs at least one entry");
    }
    if (entries > 64) {
        return Status::invalidArgument(
            "a victim buffer is a small fully associative "
            "structure; ", entries, " entries is not realisable");
    }
    return Status();
}

VictimCachedHierarchy::VictimCachedHierarchy(
    const CacheConfig &main_config,
    const VictimConfig &victim_config)
    : main_(main_config), victimConfig_(victim_config)
{
    okOrThrow(victimConfig_.validate());
}

void
VictimCachedHierarchy::insertVictim(Addr line_addr, bool dirty)
{
    buffer_.push_front(VictimLine{line_addr, dirty});
    ++victimStats_.insertions;
    if (buffer_.size() > victimConfig_.entries) {
        if (buffer_.back().dirty)
            ++victimStats_.writebacks;
        buffer_.pop_back();
    }
}

bool
VictimCachedHierarchy::takeVictim(Addr line_addr, bool &dirty_out)
{
    const auto it = std::find_if(
        buffer_.begin(), buffer_.end(),
        [line_addr](const VictimLine &entry) {
            return entry.lineAddr == line_addr;
        });
    if (it == buffer_.end())
        return false;
    dirty_out = it->dirty;
    buffer_.erase(it);
    return true;
}

AccessOutcome
VictimCachedHierarchy::access(const MemoryReference &ref)
{
    const Addr laddr =
        alignDown(ref.addr, main_.config().lineBytes);

    if (main_.probe(laddr)) {
        // Plain main-cache hit.
        return main_.access(ref);
    }

    bool dirty = false;
    if (takeVictim(laddr, dirty)) {
        // Victim hit: swap the line back into the main cache; the
        // displaced line takes its place in the buffer.  No memory
        // traffic.
        ++victimStats_.victimHits;
        const InstallOutcome installed =
            main_.installLine(laddr, dirty);
        UATM_ASSERT(installed.inserted,
                    "line absent from the main cache must install");
        if (installed.evictedValid) {
            insertVictim(installed.evictedLineAddr,
                         installed.evictedDirty);
        }
        AccessOutcome out = main_.access(ref);
        UATM_ASSERT(out.hit, "installed line must hit");
        // Report as the class comment specifies: not a main hit,
        // not a memory fill, no flush.
        out.hit = false;
        out.fill = false;
        out.writeback = false;
        return out;
    }

    // True miss: fetch from memory; the displaced line is captured
    // by the buffer instead of being flushed immediately.
    AccessOutcome out = main_.access(ref);
    if (out.evictedValid) {
        insertVictim(out.evictedLineAddr, out.evictedDirty);
        // The dirty line is parked, not flushed: the flush happens
        // (and is counted) only when the buffer overflows.
        out.writeback = false;
    }
    return out;
}

bool
VictimCachedHierarchy::probe(Addr addr) const
{
    if (main_.probe(addr))
        return true;
    const Addr laddr =
        alignDown(addr, main_.config().lineBytes);
    return std::any_of(buffer_.begin(), buffer_.end(),
                       [laddr](const VictimLine &entry) {
                           return entry.lineAddr == laddr;
                       });
}

void
VictimCachedHierarchy::reset()
{
    main_.reset();
    buffer_.clear();
    victimStats_ = VictimStats{};
}

double
VictimCachedHierarchy::mainHitRatio() const
{
    const auto &s = main_.stats();
    if (s.accesses == 0)
        return 0.0;
    // Victim hits re-enter the main cache as hits; subtract them
    // to recover the main cache's own ratio.
    const double hits = static_cast<double>(s.hits) -
                        static_cast<double>(
                            victimStats_.victimHits);
    return hits / static_cast<double>(s.accesses);
}

double
VictimCachedHierarchy::combinedHitRatio() const
{
    const auto &s = main_.stats();
    if (s.accesses == 0)
        return 0.0;
    return static_cast<double>(s.hits) /
           static_cast<double>(s.accesses);
}

std::string
VictimCachedHierarchy::describe() const
{
    std::ostringstream os;
    os << main_.config().describe() << " + " << victimConfig_.entries
       << "-entry victim buffer";
    return os.str();
}

} // namespace uatm
