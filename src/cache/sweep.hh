/**
 * @file
 * Convenience drivers: run a workload through a cache configuration
 * and sweep geometry parameters.  These produce the measured
 * hit-ratio curves that stand in for the paper's trace-driven
 * numbers (Short & Levy sizes in Example 1, Smith MR(L) in Fig. 6).
 */

#ifndef UATM_CACHE_SWEEP_HH
#define UATM_CACHE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "trace/source.hh"

namespace uatm {

/** Outcome of one simulation run. */
struct CacheRunResult
{
    CacheConfig config;
    CacheStats stats;

    double hitRatio() const { return stats.hitRatio(); }
    double missRatio() const { return stats.missRatio(); }
    double flushRatio() const
    {
        return stats.flushRatio(config.lineBytes);
    }
};

/**
 * Run @p refs references of @p source (reset first) through a fresh
 * cache of @p config.  Optionally skip a warmup prefix from the
 * statistics so compulsory-miss transients don't pollute steady-
 * state hit ratios.
 */
CacheRunResult runCacheSim(const CacheConfig &config,
                           TraceSource &source, std::uint64_t refs,
                           std::uint64_t warmup_refs = 0);

/** (size or line, hit ratio) sample from a sweep. */
struct SweepPoint
{
    std::uint64_t value;
    double hitRatio;
    double missRatio;
    double flushRatio;
};

/**
 * Hit ratio as a function of cache size, geometry otherwise fixed.
 * The source is reset before each run so every size sees the same
 * reference stream.
 *
 * When the base config qualifies (LRU + write-allocate, see
 * stackSimIneligibleReason), the whole sweep runs as ONE
 * stack-distance pass (cache/stack_sim) instead of one simulation
 * per size — bit-identical results, roughly one trace traversal.
 * A sweep that cannot take the fast path is never a silent
 * fallback: it logs the reason and bumps
 * sweepDispatchCounters().declined.
 */
std::vector<SweepPoint>
sweepCacheSize(const CacheConfig &base, TraceSource &source,
               const std::vector<std::uint64_t> &sizes,
               std::uint64_t refs, std::uint64_t warmup_refs = 0);

/**
 * Miss ratio as a function of line size at fixed capacity — the
 * MR(L) input to the Smith line-size validation.
 */
std::vector<SweepPoint>
sweepLineSize(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint32_t> &line_sizes,
              std::uint64_t refs, std::uint64_t warmup_refs = 0);

/**
 * Process-wide tally of how geometry sweeps were dispatched, so a
 * workload silently losing the single-pass engine is observable.
 * All three counters are cumulative; see resetSweepDispatchStats.
 */
struct SweepDispatchCounters
{
    /** Sweeps served by the single-pass stack engine. */
    std::uint64_t fastPath = 0;

    /** Size-axis sweeps that qualified structurally but fell back
     *  to per-point simulation — each decline is also logged with
     *  its reason (never a silent fallback). */
    std::uint64_t declined = 0;

    /** Sweeps that are per-point by design: the line axis (the
     *  stack reduction fixes the line size) or an explicitly
     *  forced per-point engine. */
    std::uint64_t perPoint = 0;
};

/** Snapshot of the global dispatch counters. */
SweepDispatchCounters sweepDispatchCounters();

/** Zero the global dispatch counters (tests, benchmarks). */
void resetSweepDispatchStats();

/** Internal: bump one counter (used by the exp layer's sweeps so
 *  both dispatch sites share one tally).  @p reason, when
 *  non-empty, is logged for declined sweeps. */
void noteSweepDispatch(bool fast_path, bool structural,
                       const std::string &reason);

} // namespace uatm

#endif // UATM_CACHE_SWEEP_HH
