/**
 * @file
 * Convenience drivers: run a workload through a cache configuration
 * and sweep geometry parameters.  These produce the measured
 * hit-ratio curves that stand in for the paper's trace-driven
 * numbers (Short & Levy sizes in Example 1, Smith MR(L) in Fig. 6).
 */

#ifndef UATM_CACHE_SWEEP_HH
#define UATM_CACHE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cache/cache.hh"
#include "trace/source.hh"

namespace uatm {

/** Outcome of one simulation run. */
struct CacheRunResult
{
    CacheConfig config;
    CacheStats stats;

    double hitRatio() const { return stats.hitRatio(); }
    double missRatio() const { return stats.missRatio(); }
    double flushRatio() const
    {
        return stats.flushRatio(config.lineBytes);
    }
};

/**
 * Run @p refs references of @p source (reset first) through a fresh
 * cache of @p config.  Optionally skip a warmup prefix from the
 * statistics so compulsory-miss transients don't pollute steady-
 * state hit ratios.
 */
CacheRunResult runCacheSim(const CacheConfig &config,
                           TraceSource &source, std::uint64_t refs,
                           std::uint64_t warmup_refs = 0);

/** (size or line, hit ratio) sample from a sweep. */
struct SweepPoint
{
    std::uint64_t value;
    double hitRatio;
    double missRatio;
    double flushRatio;
};

/**
 * Hit ratio as a function of cache size, geometry otherwise fixed.
 * The source is reset before each run so every size sees the same
 * reference stream.
 */
std::vector<SweepPoint>
sweepCacheSize(const CacheConfig &base, TraceSource &source,
               const std::vector<std::uint64_t> &sizes,
               std::uint64_t refs, std::uint64_t warmup_refs = 0);

/**
 * Miss ratio as a function of line size at fixed capacity — the
 * MR(L) input to the Smith line-size validation.
 */
std::vector<SweepPoint>
sweepLineSize(const CacheConfig &base, TraceSource &source,
              const std::vector<std::uint32_t> &line_sizes,
              std::uint64_t refs, std::uint64_t warmup_refs = 0);

} // namespace uatm

#endif // UATM_CACHE_SWEEP_HH
