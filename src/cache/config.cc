/**
 * @file
 * Implementation of cache-configuration helpers.
 */

#include "cache/config.hh"

#include <sstream>

#include "util/logging.hh"

namespace uatm {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
writeMissPolicyName(WriteMissPolicy policy)
{
    switch (policy) {
      case WriteMissPolicy::WriteAllocate:
        return "write-allocate";
      case WriteMissPolicy::WriteAround:
        return "write-around";
    }
    panic("unknown WriteMissPolicy");
}

const char *
writePolicyName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteBack:
        return "write-back";
      case WritePolicy::WriteThrough:
        return "write-through";
    }
    panic("unknown WritePolicy");
}

const char *
replacementKindName(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::LRU:
        return "LRU";
      case ReplacementKind::FIFO:
        return "FIFO";
      case ReplacementKind::Random:
        return "Random";
      case ReplacementKind::TreePLRU:
        return "TreePLRU";
    }
    panic("unknown ReplacementKind");
}

std::uint64_t
CacheConfig::numSets() const
{
    return sizeBytes / (static_cast<std::uint64_t>(assoc) * lineBytes);
}

std::uint64_t
CacheConfig::numLines() const
{
    return sizeBytes / lineBytes;
}

Status
CacheConfig::validate() const
{
    if (!isPow2(sizeBytes)) {
        return Status::invalidArgument("cache size ", sizeBytes,
                                       " is not a power of two");
    }
    if (!isPow2(lineBytes) || lineBytes < 4) {
        return Status::invalidArgument(
            "line size ", lineBytes, " must be a power of two >= 4");
    }
    if (assoc == 0)
        return Status::invalidArgument("associativity must be positive");
    const std::uint64_t way_bytes =
        static_cast<std::uint64_t>(assoc) * lineBytes;
    if (sizeBytes % way_bytes != 0) {
        return Status::invalidArgument(
            "cache size ", sizeBytes,
            " is not a multiple of assoc*line = ", way_bytes);
    }
    if (!isPow2(numSets())) {
        return Status::invalidArgument("number of sets ", numSets(),
                                       " is not a power of two");
    }
    if (replacement == ReplacementKind::TreePLRU && !isPow2(assoc)) {
        return Status::invalidArgument(
            "TreePLRU requires a power-of-two associativity, got ",
            assoc);
    }
    return Status();
}

std::string
CacheConfig::describe() const
{
    std::ostringstream os;
    if (sizeBytes % 1024 == 0)
        os << sizeBytes / 1024 << "KB";
    else
        os << sizeBytes << "B";
    os << ' ' << assoc << "-way " << lineBytes << "B lines, "
       << writeMissPolicyName(writeMiss) << ", "
       << writePolicyName(write) << ", "
       << replacementKindName(replacement);
    return os.str();
}

} // namespace uatm
