/**
 * @file
 * Implementation of the cache size <-> hit ratio model.
 */

#include "core/size_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace uatm {

CacheSizeModel::CacheSizeModel(std::vector<SizePoint> points)
    : points_(std::move(points))
{
    if (points_.size() < 2)
        fatal("size model needs at least two anchor points");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].sizeBytes <= points_[i - 1].sizeBytes)
            fatal("size model anchors must have ascending sizes");
        if (points_[i].hitRatio < points_[i - 1].hitRatio)
            fatal("size model anchors must have non-decreasing hit "
                  "ratios");
    }
    for (const auto &p : points_) {
        if (p.hitRatio < 0.0 || p.hitRatio > 1.0)
            fatal("anchor hit ratio out of [0, 1]");
    }
}

double
CacheSizeModel::hitRatioForSize(double size_bytes) const
{
    UATM_ASSERT(size_bytes > 0, "size must be positive");
    const double x = std::log2(size_bytes);
    const double x0 =
        std::log2(static_cast<double>(points_.front().sizeBytes));
    const double xn =
        std::log2(static_cast<double>(points_.back().sizeBytes));
    if (x <= x0)
        return points_.front().hitRatio;
    if (x >= xn)
        return points_.back().hitRatio;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const double xi = std::log2(
            static_cast<double>(points_[i].sizeBytes));
        if (x <= xi) {
            const double xim1 = std::log2(
                static_cast<double>(points_[i - 1].sizeBytes));
            const double t = (x - xim1) / (xi - xim1);
            return points_[i - 1].hitRatio +
                   t * (points_[i].hitRatio -
                        points_[i - 1].hitRatio);
        }
    }
    return points_.back().hitRatio;
}

double
CacheSizeModel::sizeForHitRatio(double hit_ratio) const
{
    if (hit_ratio <= points_.front().hitRatio)
        return static_cast<double>(points_.front().sizeBytes);
    if (hit_ratio >= points_.back().hitRatio)
        return static_cast<double>(points_.back().sizeBytes);
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (hit_ratio <= points_[i].hitRatio) {
            const double h0 = points_[i - 1].hitRatio;
            const double h1 = points_[i].hitRatio;
            const double x0 = std::log2(
                static_cast<double>(points_[i - 1].sizeBytes));
            const double x1 = std::log2(
                static_cast<double>(points_[i].sizeBytes));
            // Flat segments cannot be inverted past their start.
            if (h1 == h0)
                return std::exp2(x0);
            const double t = (hit_ratio - h0) / (h1 - h0);
            return std::exp2(x0 + t * (x1 - x0));
        }
    }
    return static_cast<double>(points_.back().sizeBytes);
}

CacheSizeModel
CacheSizeModel::shortLevy()
{
    // 8K and 32K are quoted in Example 1 from [14]; 128K extends
    // the curve by the paper's Case 2 (64-bit/32K == 32-bit/128K
    // via the Eq. 7 limit dHR = 0.5 (1 - HR)).
    return CacheSizeModel({
        SizePoint{8 * 1024, 0.910},
        SizePoint{32 * 1024, 0.955},
        SizePoint{128 * 1024, 0.9775},
    });
}

} // namespace uatm
