/**
 * @file
 * Implementation of the multiple-issue extension.
 */

#include "core/superscalar.hh"

#include <cmath>

#include "util/logging.hh"

namespace uatm {

void
SuperscalarModel::validate() const
{
    if (issueWidth < 1.0)
        fatal("issue width must be at least one, got ", issueWidth);
}

double
executionTimeSuperscalar(const Workload &workload,
                         const Machine &machine, double phi,
                         const SuperscalarModel &model,
                         const ExecutionModelOptions &options)
{
    model.validate();
    // Eq. 2's base term scales by 1/k; the memory terms are wall-
    // clock latencies and do not.
    const double scalar =
        executionTime(workload, machine, phi, options);
    const double base = workload.instructions -
                        workload.lambdaM(machine.lineBytes);
    return scalar - base + base * model.hitTime();
}

double
missFactorSuperscalar(const Machine &base, double phi_base,
                      double alpha_base, const Machine &improved,
                      double phi_improved, double alpha_improved,
                      const SuperscalarModel &model)
{
    model.validate();
    const double a = perMissCost(base, phi_base, alpha_base);
    const double b =
        perMissCost(improved, phi_improved, alpha_improved);
    const double h = model.hitTime();
    if (a <= h || b <= h)
        fatal("per-miss cost must exceed the hit time 1/k for the "
              "superscalar Eq. 3 (costs ", a, ", ", b, ", h = ", h,
              ")");
    return (a - h) / (b - h);
}

double
missFactorDoubleBusSuperscalar(const TradeoffContext &ctx,
                               const SuperscalarModel &model)
{
    okOrThrow(ctx.validate());
    const Machine &m = ctx.machine;
    const Machine wide = m.withDoubledBus();
    return missFactorSuperscalar(m, m.lineOverBus(), ctx.alpha,
                                 wide, wide.lineOverBus(),
                                 ctx.alpha, model);
}

double
missFactorWriteBuffersSuperscalar(const TradeoffContext &ctx,
                                  const SuperscalarModel &model)
{
    okOrThrow(ctx.validate());
    const Machine &m = ctx.machine;
    return missFactorSuperscalar(m, m.lineOverBus(), ctx.alpha, m,
                                 m.lineOverBus(), 0.0, model);
}

double
missFactorPipelinedSuperscalar(const TradeoffContext &ctx,
                               double q,
                               const SuperscalarModel &model)
{
    okOrThrow(ctx.validate());
    const Machine piped = ctx.machine.withPipelining(q);
    return missFactorSuperscalar(ctx.machine,
                                 ctx.machine.lineOverBus(),
                                 ctx.alpha, piped, 0.0, ctx.alpha,
                                 model);
}

std::optional<double>
pipelinedCrossoverSuperscalar(const TradeoffContext &ctx, double q,
                              const SuperscalarModel &model,
                              double mu_lo, double mu_hi)
{
    UATM_ASSERT(mu_lo > 0.0 && mu_hi > mu_lo,
                "invalid cycle-time bracket");
    auto gap = [&](double mu) {
        TradeoffContext at = ctx;
        at.machine = ctx.machine.withCycleTime(mu);
        return missFactorPipelinedSuperscalar(at, q, model) -
               missFactorDoubleBusSuperscalar(at, model);
    };
    double lo = mu_lo, hi = mu_hi;
    double glo = gap(lo);
    const double ghi = gap(hi);
    if (glo == 0.0)
        return lo;
    if (ghi == 0.0)
        return hi;
    if ((glo > 0.0) == (ghi > 0.0))
        return std::nullopt;
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double gmid = gap(mid);
        if (std::abs(gmid) < 1e-12 || hi - lo < 1e-9)
            return mid;
        if ((gmid > 0.0) == (glo > 0.0)) {
            lo = mid;
            glo = gmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

} // namespace uatm
