/**
 * @file
 * Cache size <-> hit ratio mapping (paper Sec. 5.2, Example 1).
 *
 * The paper quotes Short & Levy's trace-driven points (8K -> 91 %,
 * 32K -> 95.5 %); this model interpolates hit ratio piecewise-
 * linearly in log2(size) between anchor points, and can also be
 * built from a measured sweep of the cache simulator.
 */

#ifndef UATM_CORE_SIZE_MODEL_HH
#define UATM_CORE_SIZE_MODEL_HH

#include <cstdint>
#include <vector>

namespace uatm {

/** One (size, hit ratio) anchor. */
struct SizePoint
{
    std::uint64_t sizeBytes;
    double hitRatio;
};

/**
 * Monotone interpolator over (log2 size, hit ratio) anchors.
 */
class CacheSizeModel
{
  public:
    /** @param points ascending sizes with non-decreasing HR. */
    explicit CacheSizeModel(std::vector<SizePoint> points);

    /** Interpolated (clamped at the ends) hit ratio for a size. */
    double hitRatioForSize(double size_bytes) const;

    /**
     * Smallest size achieving @p hit_ratio, by inverse
     * interpolation; clamps to the anchor range.
     */
    double sizeForHitRatio(double hit_ratio) const;

    /** The model's anchors. */
    const std::vector<SizePoint> &points() const { return points_; }

    /**
     * The anchor set quoted from Short & Levy [14] and extended by
     * the Eq. 7 large-mu_m limit (128K at 97.75 %): the basis of
     * the paper's Example 1.
     */
    static CacheSizeModel shortLevy();

  private:
    std::vector<SizePoint> points_;
};

} // namespace uatm

#endif // UATM_CORE_SIZE_MODEL_HH
