/**
 * @file
 * Multiple-instruction-issue extension of the execution-time model
 * — the future work the paper announces in its Summary ("systems
 * where the throughput could be more than one instruction per
 * clock cycle"), built with the same methodology.
 *
 * With issue width k, the non-missing instructions retire k per
 * cycle, so Eq. 2 becomes
 *
 *   X_k = (E - Lambda_m)/k + (R/L) phi mu_m + (alpha R/D) mu_m
 *         + W mu_m
 *
 * and the equal-performance miss factor (Eq. 3) becomes
 *
 *   r_k = (A - 1/k) / (B - 1/k)
 *
 * where A and B are the per-miss costs of the base and improved
 * systems: the "1" that Eq. 3 subtracts is the hit time a miss
 * displaces, which shrinks to 1/k.  Two consequences follow
 * directly:
 *
 *  - since A > B, r_k decreases monotonically with k and tends to
 *    the pure cost ratio A/B: at wider issue a feature trades
 *    slightly *less* hit ratio, because each displaced hit was
 *    cheaper;
 *  - crossovers between features compared against the same base
 *    (e.g. pipelined memory vs bus doubling) are *invariant* to
 *    the issue width: r equality reduces to B equality, and h
 *    cancels.
 */

#ifndef UATM_CORE_SUPERSCALAR_HH
#define UATM_CORE_SUPERSCALAR_HH

#include <optional>

#include "core/execution_time.hh"
#include "core/tradeoff.hh"

namespace uatm {

/** Issue-width parameterisation of the model. */
struct SuperscalarModel
{
    /** Instructions issued per cycle (k >= 1; k = 1 recovers the
     *  paper's model exactly). */
    double issueWidth = 1.0;

    void validate() const;

    /** Effective hit/non-memory instruction time: 1/k cycles. */
    double hitTime() const { return 1.0 / issueWidth; }
};

/**
 * Execution time under issue width k (Eq. 2 with the base term
 * divided by k).
 */
double executionTimeSuperscalar(
    const Workload &workload, const Machine &machine, double phi,
    const SuperscalarModel &model,
    const ExecutionModelOptions &options = {});

/**
 * Generalised Eq. 3 under issue width k:
 * r = (A - 1/k)/(B - 1/k).  fatal() when a per-miss cost does not
 * exceed the hit time.
 */
double missFactorSuperscalar(const Machine &base, double phi_base,
                             double alpha_base,
                             const Machine &improved,
                             double phi_improved,
                             double alpha_improved,
                             const SuperscalarModel &model);

/** Bus-doubling factor under issue width k. */
double missFactorDoubleBusSuperscalar(const TradeoffContext &ctx,
                                      const SuperscalarModel &model);

/** Write-buffer factor under issue width k. */
double missFactorWriteBuffersSuperscalar(
    const TradeoffContext &ctx, const SuperscalarModel &model);

/** Pipelined-memory factor under issue width k. */
double missFactorPipelinedSuperscalar(const TradeoffContext &ctx,
                                      double q,
                                      const SuperscalarModel &model);

/**
 * The mu_m where the pipelined system overtakes bus doubling under
 * issue width k.  Provably identical for every k (the hit time
 * cancels); exposed so that invariance can be demonstrated.
 */
std::optional<double> pipelinedCrossoverSuperscalar(
    const TradeoffContext &ctx, double q,
    const SuperscalarModel &model, double mu_lo, double mu_hi);

} // namespace uatm

#endif // UATM_CORE_SUPERSCALAR_HH
