/**
 * @file
 * Implementation of the workload characterisation.
 */

#include "core/workload.hh"

#include <sstream>

#include "util/logging.hh"

namespace uatm {

void
Workload::validate(double line_bytes) const
{
    if (instructions <= 0)
        fatal("workload needs a positive instruction count");
    if (bytesRead < 0 || instrBytesRead < 0 || writeArounds < 0)
        fatal("workload byte/instruction counts must be "
              "non-negative");
    if (flushRatio < 0.0 || flushRatio > 1.0)
        fatal("flush ratio alpha must lie in [0, 1], got ",
              flushRatio);
    if (dataRefs <= 0)
        fatal("workload needs a positive data-reference count");
    const double misses = lambdaM(line_bytes);
    if (misses > dataRefs)
        fatal("Lambda_m = ", misses, " exceeds the data references ",
              dataRefs, "; the hit ratio would be negative");
    if (misses + writeArounds > instructions)
        fatal("more missing load/stores than instructions");
    if (writeAroundTransfers > 0 &&
        writeAroundTransfers < writeArounds)
        fatal("write-around transfers cannot be fewer than the "
              "write-around stores");
}

double
Workload::lambdaM(double line_bytes) const
{
    UATM_ASSERT(line_bytes > 0, "line size must be positive");
    return bytesRead / line_bytes + writeArounds;
}

double
Workload::writeTransferCount() const
{
    return writeAroundTransfers > 0 ? writeAroundTransfers
                                    : writeArounds;
}

double
Workload::lambdaH(double line_bytes) const
{
    return dataRefs - lambdaM(line_bytes);
}

double
Workload::hitRatio(double line_bytes) const
{
    return lambdaH(line_bytes) / dataRefs;
}

double
Workload::missRatio(double line_bytes) const
{
    return lambdaM(line_bytes) / dataRefs;
}

double
Workload::hitToMissRatio(double line_bytes) const
{
    const double misses = lambdaM(line_bytes);
    UATM_ASSERT(misses > 0, "s is undefined with zero misses");
    return lambdaH(line_bytes) / misses;
}

double
Workload::busTrafficPerInstruction(double bus_width_bytes) const
{
    UATM_ASSERT(bus_width_bytes > 0, "bus width must be positive");
    UATM_ASSERT(instructions > 0, "needs instructions");
    const double bytes = bytesRead * (1.0 + flushRatio) +
                         writeTransferCount() * bus_width_bytes;
    return bytes / instructions;
}

Workload
Workload::fromHitRatio(double instructions, double data_refs,
                       double hit_ratio, double line_bytes,
                       double flush_ratio)
{
    UATM_ASSERT(hit_ratio >= 0.0 && hit_ratio <= 1.0,
                "hit ratio must be in [0, 1], got ", hit_ratio);
    Workload w;
    w.instructions = instructions;
    w.dataRefs = data_refs;
    w.flushRatio = flush_ratio;
    w.bytesRead = (1.0 - hit_ratio) * data_refs * line_bytes;
    w.writeArounds = 0.0;
    w.validate(line_bytes);
    return w;
}

Workload
Workload::fromHitRatioWriteAround(double instructions,
                                  double data_refs, double hit_ratio,
                                  double line_bytes,
                                  double flush_ratio,
                                  double store_miss_frac)
{
    UATM_ASSERT(store_miss_frac >= 0.0 && store_miss_frac <= 1.0,
                "store-miss fraction must be in [0, 1]");
    Workload w;
    w.instructions = instructions;
    w.dataRefs = data_refs;
    w.flushRatio = flush_ratio;
    const double misses = (1.0 - hit_ratio) * data_refs;
    w.writeArounds = misses * store_miss_frac;
    w.bytesRead = (misses - w.writeArounds) * line_bytes;
    w.validate(line_bytes);
    return w;
}

Workload
Workload::fromCacheRun(const CacheStats &stats,
                       std::uint32_t line_bytes,
                       std::uint32_t bus_width_bytes)
{
    Workload w;
    w.instructions = static_cast<double>(stats.instructions);
    w.dataRefs = static_cast<double>(stats.accesses);
    w.bytesRead = static_cast<double>(stats.bytesRead(line_bytes));
    w.writeArounds = static_cast<double>(stats.storesToMemory);
    w.writeAroundTransfers =
        bus_width_bytes != 0
            ? stats.writeTransfers(bus_width_bytes)
            : w.writeArounds;
    w.flushRatio = stats.flushRatio(line_bytes);
    w.validate(line_bytes);
    return w;
}

std::string
Workload::describe(double line_bytes) const
{
    std::ostringstream os;
    os << "E=" << instructions << " R=" << bytesRead
       << " W=" << writeArounds << " alpha=" << flushRatio
       << " refs=" << dataRefs << " HR=" << hitRatio(line_bytes);
    return os.str();
}

} // namespace uatm
