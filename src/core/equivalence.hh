/**
 * @file
 * Design-point equivalence (paper Sec. 4.5 and Example 1): pairs of
 * (machine, hit ratio) that deliver the same execution time / mean
 * memory delay on a given application.
 */

#ifndef UATM_CORE_EQUIVALENCE_HH
#define UATM_CORE_EQUIVALENCE_HH

#include <string>

#include "core/execution_time.hh"
#include "core/machine.hh"
#include "core/size_model.hh"
#include "core/tradeoff.hh"

namespace uatm {

/** A machine plus the data-cache hit ratio it runs at. */
struct DesignPoint
{
    Machine machine;
    double hitRatio = 0.95;

    std::string describe() const;
};

/**
 * A reference application shape for evaluating design points:
 * instruction count, data references and flush ratio.  The
 * equivalence results are independent of these absolute numbers
 * (Sec. 4.5); they are needed only to evaluate X concretely.
 */
struct ApplicationShape
{
    double instructions = 1e6;
    double dataRefs = 3e5;
    double alpha = 0.5;
};

/** Execution time of @p design on @p app (full-stalling cache). */
double designExecutionTime(const DesignPoint &design,
                           const ApplicationShape &app,
                           const ExecutionModelOptions &options = {});

/** Mean memory delay per data reference of @p design on @p app. */
double designMeanMemoryDelay(
    const DesignPoint &design, const ApplicationShape &app,
    const ExecutionModelOptions &options = {});

/**
 * The design with a doubled bus that matches @p base's execution
 * time: HR2 = HR1 - (r - 1)(1 - HR1) with r from Eq. 3.
 */
DesignPoint equivalentDoubleBusDesign(const DesignPoint &base,
                                      double alpha);

/**
 * The hit ratio a base-bus design needs to match a doubled-bus
 * design at @p improved.hitRatio (Eq. 7 direction).
 */
DesignPoint equivalentNarrowBusDesign(const DesignPoint &improved,
                                      double alpha);

/**
 * Example 1 helper: translate a design's hit ratio into a cache
 * size via @p size_model, for the pin-count / chip-area argument of
 * Sec. 5.2.
 */
double designCacheSize(const DesignPoint &design,
                       const CacheSizeModel &size_model);

} // namespace uatm

#endif // UATM_CORE_EQUIVALENCE_HH
