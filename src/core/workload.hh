/**
 * @file
 * Application characterisation {E, R, R_I, W, alpha} (paper
 * Table 1) and its coupling to hit/miss ratios (Eqs. 1, 4, 5).
 */

#ifndef UATM_CORE_WORKLOAD_HH
#define UATM_CORE_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "cache/cache.hh"

namespace uatm {

/**
 * The paper's workload parameters for E executed instructions.
 *
 * All quantities are real-valued: the model is analytic and is
 * routinely evaluated at non-integral operating points.
 */
struct Workload
{
    /** Instructions executed (E). */
    double instructions = 0;

    /** Data bytes read in full bus width on read misses (R).  For
     *  a write-allocate cache this includes write-miss fills. */
    double bytesRead = 0;

    /** Instruction bytes read on I-cache misses (R_I). */
    double instrBytesRead = 0;

    /** Write-around miss instructions using the bus (W); zero for
     *  a write-allocate cache. */
    double writeArounds = 0;

    /** Bus transfers those write-arounds need; equals writeArounds
     *  while every store fits in the bus width (the paper's
     *  assumption), larger when stores exceed D (Table 1's
     *  decomposition).  Zero means "same as writeArounds". */
    double writeAroundTransfers = 0;

    /** Cache line flush ratio alpha in [0, 1]: flushed bytes are
     *  alpha * R. */
    double flushRatio = 0.5;

    /** Total data references Lambda_h + Lambda_m. */
    double dataRefs = 0;

    /** fatal() when the numbers are inconsistent. */
    void validate(double line_bytes) const;

    /** Load/store instructions that miss: Lambda_m = R/L + W
     *  (Eq. 1); W counted in instructions. */
    double lambdaM(double line_bytes) const;

    /** Bus transfers used by write-arounds (for the W mu_m term). */
    double writeTransferCount() const;

    /**
     * Bytes moved over the processor-memory bus per instruction:
     * (R (1 + alpha) + W transfers * D) / E — the traffic metric
     * of Goodman [1], which the paper's Sec. 2 contrasts with
     * hit-ratio-only optimisation.
     */
    double busTrafficPerInstruction(double bus_width_bytes) const;

    /** Load/store instructions that hit: total - Lambda_m. */
    double lambdaH(double line_bytes) const;

    /** Data-cache hit ratio implied by the parameters. */
    double hitRatio(double line_bytes) const;

    /** Miss ratio MR = 1/(s+1) (Eq. 4). */
    double missRatio(double line_bytes) const;

    /** s = Lambda_h / Lambda_m. */
    double hitToMissRatio(double line_bytes) const;

    /**
     * Build a write-allocate workload from a target hit ratio:
     * Lambda_m = (1 - HR) * data_refs, R = Lambda_m * L, W = 0.
     */
    static Workload fromHitRatio(double instructions,
                                 double data_refs, double hit_ratio,
                                 double line_bytes,
                                 double flush_ratio);

    /**
     * Build a write-around workload from a target hit ratio and the
     * fraction of misses that are stores (those become W).
     */
    static Workload fromHitRatioWriteAround(double instructions,
                                            double data_refs,
                                            double hit_ratio,
                                            double line_bytes,
                                            double flush_ratio,
                                            double store_miss_frac);

    /**
     * Summarise a measured cache run in the paper's vocabulary.
     * When @p bus_width_bytes is non-zero, W is expressed in bus
     * transfers (a store wider than the bus costs several memory
     * cycles, Table 1); with zero, W counts store instructions
     * (the paper's size <= D assumption).
     */
    static Workload fromCacheRun(const CacheStats &stats,
                                 std::uint32_t line_bytes,
                                 std::uint32_t bus_width_bytes = 0);

    /** One-line summary. */
    std::string describe(double line_bytes) const;
};

} // namespace uatm

#endif // UATM_CORE_WORKLOAD_HH
