/**
 * @file
 * Analytic machine description: bus width D, line size L, memory
 * cycle time mu_m, and the pipelined-memory option (paper Eq. 9).
 */

#ifndef UATM_CORE_MACHINE_HH
#define UATM_CORE_MACHINE_HH

#include <string>

#include "util/status.hh"

namespace uatm {

/**
 * The architectural parameters the tradeoff model varies.  Values
 * are real-valued so sweeps and limits (e.g. mu_m -> infinity) can
 * be evaluated anywhere.
 */
struct Machine
{
    /** External data bus width D in bytes. */
    double busWidth = 4;

    /** Cache line size L in bytes; must satisfy L >= D. */
    double lineBytes = 32;

    /** Memory cycle time mu_m, in CPU cycles per D-byte transfer. */
    double cycleTime = 8;

    /** Pipelined memory system (Sec. 4.4). */
    bool pipelined = false;

    /** Pipelined issue interval q (Eq. 9); q = 2 is the paper's
     *  best-case implementation. */
    double pipelineInterval = 2;

    /** OK when the parameters are consistent; InvalidArgument with
     *  the first violation otherwise. */
    Status validate() const;

    /** L/D, the full-stalling factor of Table 2. */
    double lineOverBus() const { return lineBytes / busWidth; }

    /**
     * Time to move one L-byte line: (L/D) mu_m when not pipelined,
     * mu_p = mu_m + q(L/D - 1) when pipelined (Eq. 9).
     */
    double lineTransferTime() const;

    // The withX() copies throw StatusError when the resulting
    // machine would be inconsistent (e.g. doubling the bus past the
    // line size), so a sweep point at a boundary degrades to an
    // error row instead of killing the run.

    /** A copy with the bus (and memory path) width doubled. */
    Machine withDoubledBus() const;

    /** A copy with pipelining enabled at interval @p q. */
    Machine withPipelining(double q) const;

    /** A copy with a different line size. */
    Machine withLineBytes(double line_bytes) const;

    /** A copy with a different memory cycle time. */
    Machine withCycleTime(double mu_m) const;

    std::string describe() const;
};

} // namespace uatm

#endif // UATM_CORE_MACHINE_HH
