/**
 * @file
 * Implementation of the analytic machine description.
 */

#include "core/machine.hh"

#include <sstream>

#include "util/logging.hh"

namespace uatm {

Status
Machine::validate() const
{
    if (busWidth <= 0)
        return Status::invalidArgument("bus width must be positive");
    if (lineBytes < busWidth) {
        return Status::invalidArgument(
            "line size L = ", lineBytes,
            " must be at least the bus width D = ", busWidth);
    }
    if (cycleTime <= 0) {
        return Status::invalidArgument(
            "memory cycle time must be positive");
    }
    if (pipelined) {
        if (pipelineInterval <= 0) {
            return Status::invalidArgument(
                "pipeline interval q must be positive");
        }
        if (pipelineInterval > cycleTime) {
            return Status::invalidArgument(
                "pipeline interval q = ", pipelineInterval,
                " exceeds mu_m = ", cycleTime);
        }
    }
    return Status();
}

double
Machine::lineTransferTime() const
{
    const double chunks = lineOverBus();
    if (!pipelined)
        return chunks * cycleTime;
    return cycleTime + pipelineInterval * (chunks - 1.0);
}

Machine
Machine::withDoubledBus() const
{
    Machine m = *this;
    m.busWidth *= 2.0;
    if (m.lineBytes < m.busWidth) {
        throw StatusError(Status::invalidArgument(
            "doubling the bus to D = ", m.busWidth,
            " would exceed the line size L = ", m.lineBytes));
    }
    return m;
}

Machine
Machine::withPipelining(double q) const
{
    Machine m = *this;
    m.pipelined = true;
    m.pipelineInterval = q;
    okOrThrow(m.validate());
    return m;
}

Machine
Machine::withLineBytes(double line_bytes) const
{
    Machine m = *this;
    m.lineBytes = line_bytes;
    okOrThrow(m.validate());
    return m;
}

Machine
Machine::withCycleTime(double mu_m) const
{
    Machine m = *this;
    m.cycleTime = mu_m;
    okOrThrow(m.validate());
    return m;
}

std::string
Machine::describe() const
{
    std::ostringstream os;
    os << "D=" << busWidth << "B L=" << lineBytes << "B mu_m="
       << cycleTime;
    if (pipelined)
        os << " pipelined q=" << pipelineInterval;
    return os.str();
}

} // namespace uatm
