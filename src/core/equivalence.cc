/**
 * @file
 * Implementation of the design-point equivalence helpers.
 */

#include "core/equivalence.hh"

#include <sstream>

#include "obs/profile.hh"
#include "util/logging.hh"

namespace uatm {

std::string
DesignPoint::describe() const
{
    std::ostringstream os;
    os << machine.describe() << " @ HR=" << hitRatio;
    return os.str();
}

double
designExecutionTime(const DesignPoint &design,
                    const ApplicationShape &app,
                    const ExecutionModelOptions &options)
{
    const Workload w = Workload::fromHitRatio(
        app.instructions, app.dataRefs, design.hitRatio,
        design.machine.lineBytes, app.alpha);
    return executionTimeFS(w, design.machine, options);
}

double
designMeanMemoryDelay(const DesignPoint &design,
                      const ApplicationShape &app,
                      const ExecutionModelOptions &options)
{
    const Workload w = Workload::fromHitRatio(
        app.instructions, app.dataRefs, design.hitRatio,
        design.machine.lineBytes, app.alpha);
    return meanMemoryDelay(w, design.machine,
                           design.machine.lineOverBus(), options);
}

DesignPoint
equivalentDoubleBusDesign(const DesignPoint &base, double alpha)
{
    UATM_PROFILE_SCOPE("core.equivalence");
    TradeoffContext ctx;
    ctx.machine = base.machine;
    ctx.alpha = alpha;
    const double r = missFactorDoubleBus(ctx);
    DesignPoint wide;
    wide.machine = base.machine.withDoubledBus();
    wide.hitRatio = equivalentHitRatio(r, base.hitRatio);
    return wide;
}

DesignPoint
equivalentNarrowBusDesign(const DesignPoint &improved, double alpha)
{
    UATM_PROFILE_SCOPE("core.equivalence");
    UATM_ASSERT(improved.machine.busWidth >= 8,
                "cannot halve a bus narrower than 8 bytes here");
    DesignPoint narrow;
    narrow.machine = improved.machine;
    narrow.machine.busWidth /= 2.0;

    TradeoffContext ctx;
    ctx.machine = narrow.machine;
    ctx.alpha = alpha;
    const double r = missFactorDoubleBus(ctx);
    // Eq. 7 direction: the narrow system must gain
    // (1 - 1/r)(1 - HR2) of hit ratio.
    narrow.hitRatio = improved.hitRatio +
                      hitRatioGainRequired(r, improved.hitRatio);
    if (narrow.hitRatio > 1.0)
        fatal("no physical hit ratio can compensate for halving "
              "the bus at HR = ", improved.hitRatio);
    return narrow;
}

double
designCacheSize(const DesignPoint &design,
                const CacheSizeModel &size_model)
{
    return size_model.sizeForHitRatio(design.hitRatio);
}

} // namespace uatm
