/**
 * @file
 * Implementation of the unified tradeoff model.
 */

#include "core/tradeoff.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace uatm {

const char *
tradeFeatureName(TradeFeature feature)
{
    switch (feature) {
      case TradeFeature::DoubleBus:
        return "doubling bus";
      case TradeFeature::PartialStall:
        return "partial stall";
      case TradeFeature::WriteBuffers:
        return "write buffers";
      case TradeFeature::PipelinedMemory:
        return "pipelined mem";
    }
    panic("unknown TradeFeature");
}

Status
TradeoffContext::validate() const
{
    if (Status status = machine.validate(); !status.ok())
        return status;
    if (machine.pipelined) {
        return Status::invalidArgument(
            "the tradeoff base machine must be non-pipelined "
            "(Sec. 5.3 compares against that ground)");
    }
    if (alpha < 0.0 || alpha > 1.0) {
        return Status::invalidArgument(
            "alpha must lie in [0, 1], got ", alpha);
    }
    return Status();
}

double
perMissCost(const Machine &machine, double phi, double alpha)
{
    okOrThrow(machine.validate());
    UATM_ASSERT(phi >= 0.0, "phi must be non-negative");
    if (machine.pipelined) {
        // Full-blocking pipelined system: the fill stalls mu_p and
        // each flushed line costs mu_p, i.e. (1 + alpha) mu_p.
        return (1.0 + alpha) * machine.lineTransferTime();
    }
    return (phi + machine.lineOverBus() * alpha) * machine.cycleTime;
}

double
missFactor(const Machine &base, double phi_base, double alpha_base,
           const Machine &improved, double phi_improved,
           double alpha_improved)
{
    const double a = perMissCost(base, phi_base, alpha_base);
    const double b =
        perMissCost(improved, phi_improved, alpha_improved);
    if (a <= 1.0 || b <= 1.0) {
        // Eq. 3's denominator collapses at the one-cycle boundary;
        // a sweep point there must degrade to an error row.
        throw StatusError(Status::outOfRange(
            "per-miss cost must exceed the one-cycle hit time "
            "for Eq. 3 to be meaningful (costs ", a, ", ", b, ")"));
    }
    return (a - 1.0) / (b - 1.0);
}

double
missFactorDoubleBus(const TradeoffContext &ctx)
{
    okOrThrow(ctx.validate());
    const Machine &m = ctx.machine;
    const Machine wide = m.withDoubledBus();
    // FS on both sides: phi = L/D and L/2D respectively (Eq. 3).
    return missFactor(m, m.lineOverBus(), ctx.alpha, wide,
                      wide.lineOverBus(), ctx.alpha);
}

double
missFactorWidenBus(const TradeoffContext &ctx, double factor)
{
    okOrThrow(ctx.validate());
    UATM_ASSERT(factor > 1.0, "widening factor must exceed one");
    const Machine &m = ctx.machine;
    Machine wide = m;
    wide.busWidth *= factor;
    if (wide.busWidth > wide.lineBytes) {
        throw StatusError(Status::invalidArgument(
            "widening the bus ", factor, "x would exceed the ",
            m.lineBytes, "-byte line"));
    }
    return missFactor(m, m.lineOverBus(), ctx.alpha, wide,
                      wide.lineOverBus(), ctx.alpha);
}

double
missFactorPartialStall(const TradeoffContext &ctx, double phi)
{
    okOrThrow(ctx.validate());
    const Machine &m = ctx.machine;
    UATM_ASSERT(phi >= 0.0 && phi <= m.lineOverBus(),
                "phi = ", phi, " outside [0, L/D]");
    return missFactor(m, m.lineOverBus(), ctx.alpha, m, phi,
                      ctx.alpha);
}

double
missFactorWriteBuffers(const TradeoffContext &ctx)
{
    okOrThrow(ctx.validate());
    const Machine &m = ctx.machine;
    // Best case (Table 3): the flush term vanishes; the read path
    // is unchanged, so the improved per-miss cost is (L/D) mu_m.
    return missFactor(m, m.lineOverBus(), ctx.alpha, m,
                      m.lineOverBus(), 0.0);
}

double
missFactorPipelined(const TradeoffContext &ctx, double q)
{
    okOrThrow(ctx.validate());
    const Machine piped = ctx.machine.withPipelining(q);
    return missFactor(ctx.machine, ctx.machine.lineOverBus(),
                      ctx.alpha, piped, /*phi=*/0.0, ctx.alpha);
}

double
missFactorVictim(const TradeoffContext &ctx,
                 double victim_hit_fraction,
                 double swap_penalty_cycles)
{
    okOrThrow(ctx.validate());
    UATM_ASSERT(victim_hit_fraction >= 0.0 &&
                victim_hit_fraction <= 1.0,
                "victim hit fraction must be a probability");
    UATM_ASSERT(swap_penalty_cycles >= 0.0,
                "swap penalty must be non-negative");
    const Machine &m = ctx.machine;
    const double a =
        perMissCost(m, m.lineOverBus(), ctx.alpha);
    if (swap_penalty_cycles >= a) {
        throw StatusError(Status::invalidArgument(
            "a victim swap (", swap_penalty_cycles,
            " cycles) must be cheaper than a full miss (", a,
            " cycles)"));
    }
    const double effective =
        (1.0 - victim_hit_fraction) * a +
        victim_hit_fraction * swap_penalty_cycles;
    if (a <= 1.0 || effective <= 1.0) {
        throw StatusError(Status::outOfRange(
            "per-miss cost must exceed the one-cycle hit time "
            "for Eq. 3 to be meaningful"));
    }
    return (a - 1.0) / (effective - 1.0);
}

double
hitRatioTraded(double r, double base_hit_ratio)
{
    UATM_ASSERT(base_hit_ratio >= 0.0 && base_hit_ratio <= 1.0,
                "hit ratio must be in [0, 1]");
    UATM_ASSERT(r > 0.0, "miss factor must be positive");
    // Eq. 6 with 1/(s+1) = 1 - HR1.
    return (r - 1.0) * (1.0 - base_hit_ratio);
}

double
equivalentHitRatio(double r, double base_hit_ratio)
{
    const double hr2 = base_hit_ratio - hitRatioTraded(
        r, base_hit_ratio);
    // Eq. 6 is only valid for physical systems (HR2 >= 0).
    if (hr2 < 0.0) {
        throw StatusError(Status::outOfRange(
            "equivalent hit ratio is negative (r = ", r,
            ", base HR = ", base_hit_ratio,
            "); outside Eq. 6's validity range"));
    }
    return hr2;
}

double
hitRatioGainRequired(double r, double improved_hit_ratio)
{
    UATM_ASSERT(improved_hit_ratio >= 0.0 &&
                improved_hit_ratio <= 1.0,
                "hit ratio must be in [0, 1]");
    UATM_ASSERT(r > 0.0, "miss factor must be positive");
    // Eq. 7: with the improved system as base, the factor is 1/r.
    return (1.0 - 1.0 / r) * (1.0 - improved_hit_ratio);
}

double
featureMissFactor(const TradeoffContext &ctx, TradeFeature feature,
                  double q, double phi)
{
    switch (feature) {
      case TradeFeature::DoubleBus:
        return missFactorDoubleBus(ctx);
      case TradeFeature::PartialStall:
        return missFactorPartialStall(ctx, phi);
      case TradeFeature::WriteBuffers:
        return missFactorWriteBuffers(ctx);
      case TradeFeature::PipelinedMemory:
        return missFactorPipelined(ctx, q);
    }
    panic("unknown TradeFeature");
}

std::optional<double>
crossoverCycleTime(const TradeoffContext &ctx, TradeFeature a,
                   TradeFeature b, double q, double phi,
                   double mu_lo, double mu_hi)
{
    UATM_ASSERT(mu_lo > 0.0 && mu_hi > mu_lo,
                "invalid cycle-time bracket");
    auto gap = [&](double mu) {
        TradeoffContext at = ctx;
        at.machine = ctx.machine.withCycleTime(mu);
        return featureMissFactor(at, a, q, phi) -
               featureMissFactor(at, b, q, phi);
    };
    double lo = mu_lo, hi = mu_hi;
    double glo = gap(lo), ghi = gap(hi);
    if (glo == 0.0)
        return lo;
    if (ghi == 0.0)
        return hi;
    if ((glo > 0.0) == (ghi > 0.0))
        return std::nullopt; // no sign change: no crossover
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        const double gmid = gap(mid);
        if (std::abs(gmid) < 1e-12 || hi - lo < 1e-9)
            return mid;
        if ((gmid > 0.0) == (glo > 0.0)) {
            lo = mid;
            glo = gmid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

std::vector<FeatureScore>
rankFeatures(const TradeoffContext &ctx, double base_hit_ratio,
             double phi_partial, double q)
{
    std::vector<FeatureScore> scores;
    for (TradeFeature f :
         {TradeFeature::DoubleBus, TradeFeature::PartialStall,
          TradeFeature::WriteBuffers, TradeFeature::PipelinedMemory}) {
        const double r = featureMissFactor(ctx, f, q, phi_partial);
        scores.push_back(FeatureScore{
            f, tradeFeatureName(f), r,
            hitRatioTraded(r, base_hit_ratio)});
    }
    std::sort(scores.begin(), scores.end(),
              [](const FeatureScore &x, const FeatureScore &y) {
                  return x.missFactor > y.missFactor;
              });
    return scores;
}

} // namespace uatm
