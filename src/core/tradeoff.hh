/**
 * @file
 * The unified tradeoff model (paper Sec. 4): for each architectural
 * feature, the miss-count ratio r = Lambda_m'/Lambda_m at equal
 * execution time (Eq. 3 / Table 3) and the hit ratio it trades
 * (Eqs. 6 and 7).
 *
 * Conventions: the *base* system is a full-stalling, write-allocate
 * cache on a non-pipelined memory (the paper's Sec. 5 comparison
 * ground).  r > 1 means the improved system tolerates r times as
 * many misses, i.e. it affords a hit ratio lower by
 * dHR = (r - 1)(1 - HR_base) (Eq. 6).
 */

#ifndef UATM_CORE_TRADEOFF_HH
#define UATM_CORE_TRADEOFF_HH

#include <optional>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "core/workload.hh"

namespace uatm {

/** The architectural features the paper compares (Sec. 5.3). */
enum class TradeFeature
{
    DoubleBus,       ///< D -> 2D (Sec. 4.1)
    PartialStall,    ///< FS -> BL/BNL/NB with measured phi (Sec. 4.2)
    WriteBuffers,    ///< read-bypassing write buffers (Sec. 4.3)
    PipelinedMemory, ///< pipelined fills, Eq. 9 (Sec. 4.4)
};

const char *tradeFeatureName(TradeFeature feature);

/**
 * Shared parameters of one tradeoff evaluation.
 */
struct TradeoffContext
{
    /** Base machine (non-pipelined; D and L as configured). */
    Machine machine;

    /** Flush ratio alpha, assumed equal in both systems
     *  (the paper uses 0.5 throughout Sec. 5). */
    double alpha = 0.5;

    /** OK for a valid Sec. 5.3 base machine; InvalidArgument
     *  otherwise. */
    Status validate() const;
};

/**
 * Per-miss cost A = (phi + (L/D) alpha) mu_m of a generic
 * write-allocate system; the building block of Eq. 3.  For a
 * pipelined machine the cost is (1 + alpha) mu_p and phi is
 * ignored (Sec. 4.4 pipelines full-blocking caches).
 */
double perMissCost(const Machine &machine, double phi, double alpha);

/**
 * Miss-count ratio at equal performance between an arbitrary
 * (machine, phi, alpha) pair; the fully general Eq. 3:
 * r = (A_base - 1) / (A_improved - 1).
 * fatal() when either per-miss cost does not exceed one cycle
 * (the model's validity bound; at mu_m >= 2 it always does).
 */
double missFactor(const Machine &base, double phi_base,
                  double alpha_base, const Machine &improved,
                  double phi_improved, double alpha_improved);

/** Table 3 row 1: doubling the data bus width (FS base). */
double missFactorDoubleBus(const TradeoffContext &ctx);

/**
 * Generalised bus widening D -> factor*D (the paper's bus space is
 * {4, 8, 16, 32}, so factor in {2, 4, 8}); factor must keep the
 * bus within the line size.  factor = 2 is Table 3 row 1.
 */
double missFactorWidenBus(const TradeoffContext &ctx, double factor);

/** Table 3 row 2: FS -> partially-stalling with factor phi. */
double missFactorPartialStall(const TradeoffContext &ctx, double phi);

/** Table 3 row 3: read-bypassing write buffers (flush hidden). */
double missFactorWriteBuffers(const TradeoffContext &ctx);

/** Table 3 row 4: pipelined memory with interval q (Eq. 9). */
double missFactorPipelined(const TradeoffContext &ctx, double q);

/**
 * Extension: a victim cache (Jouppi [7]) turns a fraction
 * @p victim_hit_fraction of the base system's misses into short
 * @p swap_penalty_cycles swaps instead of full line fills, so the
 * effective per-miss cost drops to
 * (1-f) A + f p and the usual Eq. 3 ratio applies.
 */
double missFactorVictim(const TradeoffContext &ctx,
                        double victim_hit_fraction,
                        double swap_penalty_cycles);

/**
 * Eq. 6: hit ratio the improved system can give up,
 * dHR = (r - 1)(1 - HR_base); valid while the resulting HR2 >= 0.
 */
double hitRatioTraded(double r, double base_hit_ratio);

/** HR2 = HR1 - dHR from Eq. 6. */
double equivalentHitRatio(double r, double base_hit_ratio);

/**
 * Eq. 7 (improved system as base): hit ratio the *base* system
 * must gain to match the feature, dHR = (1 - r')(1 - HR2) where
 * r' = 1/r is the inverse miss factor.
 */
double hitRatioGainRequired(double r, double improved_hit_ratio);

/**
 * Eq. 3 specialised to one named feature at the given operating
 * point: @p q is the pipelined fill interval, @p phi the measured
 * stalling factor for the partially-stalling entry (both ignored
 * by the features that don't use them).
 */
double featureMissFactor(const TradeoffContext &ctx,
                         TradeFeature feature, double q, double phi);

/**
 * The mu_m beyond which feature A's miss factor exceeds feature
 * B's (e.g. pipelined vs. double bus, Sec. 5.3).  Returns nullopt
 * when no crossover exists in [mu_lo, mu_hi].
 */
std::optional<double>
crossoverCycleTime(const TradeoffContext &ctx, TradeFeature a,
                   TradeFeature b, double q, double phi, double mu_lo,
                   double mu_hi);

/** One feature's standing in the unified comparison. */
struct FeatureScore
{
    TradeFeature feature;
    std::string name;
    double missFactor;     ///< r
    double hitRatioTraded; ///< dHR at the context's base HR
};

/**
 * Rank features by miss factor at the given operating point
 * (Sec. 5.3).  @p phi_partial is the measured stalling factor for
 * the partially-stalling entry; @p q the pipelined interval.
 */
std::vector<FeatureScore>
rankFeatures(const TradeoffContext &ctx, double base_hit_ratio,
             double phi_partial, double q);

} // namespace uatm

#endif // UATM_CORE_TRADEOFF_HH
