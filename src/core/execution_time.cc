/**
 * @file
 * Implementation of the execution-time model.
 */

#include "core/execution_time.hh"

#include "util/logging.hh"

namespace uatm {

double
missPenalty(const Machine &machine, double phi)
{
    if (machine.pipelined) {
        // Sec. 4.4: the pipelined system is evaluated for full
        // blocking caches; the per-miss stall is mu_p.
        return machine.lineTransferTime();
    }
    return phi * machine.cycleTime;
}

double
executionTime(const Workload &workload, const Machine &machine,
              double phi, const ExecutionModelOptions &options)
{
    okOrThrow(machine.validate());
    workload.validate(machine.lineBytes);
    UATM_ASSERT(phi >= 0.0, "stalling factor must be non-negative");

    const double L = machine.lineBytes;
    const double lambda_m = workload.lambdaM(L);
    const double line_misses = workload.bytesRead / L;

    // Base: every instruction but the missing load/stores takes one
    // cycle.
    double x = workload.instructions - lambda_m;

    // Read-miss stalls.
    x += line_misses * missPenalty(machine, phi);

    // Flush stalls, unless write buffers hide them.  Each flushed
    // line costs one full line transfer: (alpha R / D) mu_m when
    // not pipelined, (alpha R / L) mu_p when pipelined.
    if (!options.writeBuffers) {
        const double flushed_lines =
            workload.flushRatio * workload.bytesRead / L;
        x += flushed_lines * machine.lineTransferTime();
    }

    // Write-around misses: one memory cycle per bus transfer
    // (equal to W when every store fits in the bus width).
    x += workload.writeTransferCount() * machine.cycleTime;

    // Optional instruction-fetch term (Sec. 3.4), full blocking.
    if (options.includeInstructionFetch && workload.instrBytesRead > 0)
        x += workload.instrBytesRead / L * machine.lineTransferTime();

    return x;
}

double
executionTimeFS(const Workload &workload, const Machine &machine,
                const ExecutionModelOptions &options)
{
    return executionTime(workload, machine, machine.lineOverBus(),
                         options);
}

double
meanMemoryDelay(const Workload &workload, const Machine &machine,
                double phi, const ExecutionModelOptions &options)
{
    // Sec. 4.5: the mean memory delay per data reference is
    // (X - N_LS) / (Lambda_h + Lambda_m), where the numerator keeps
    // the one-cycle hit times: (X - E)/refs + 1.  Two systems with
    // equal E, refs and X therefore always have equal mean delay.
    const double x = executionTime(workload, machine, phi, options);
    return (x - workload.instructions) / workload.dataRefs + 1.0;
}

} // namespace uatm
