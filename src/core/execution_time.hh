/**
 * @file
 * The CPU execution-time model (paper Eq. 2) and the mean memory
 * delay it induces (Sec. 4.5).
 *
 * X = (E - Lambda_m) + (R/L) * phi * mu_m + (alpha R / D) * mu_m
 *     + W * mu_m
 *
 * with the flush term removed when read-bypassing write buffers
 * hide it, and per-line transfer times replaced by mu_p for a
 * pipelined memory system.
 */

#ifndef UATM_CORE_EXECUTION_TIME_HH
#define UATM_CORE_EXECUTION_TIME_HH

#include "core/machine.hh"
#include "core/workload.hh"
#include "cpu/stall_feature.hh"

namespace uatm {

/** Knobs of the analytic execution-time evaluation. */
struct ExecutionModelOptions
{
    /** Read-bypassing write buffers hide the flush term entirely
     *  (the paper's best-case write-buffer model, Table 3). */
    bool writeBuffers = false;

    /** Include the instruction-fetch term (R_I/L) * phi_I * mu_m
     *  (Sec. 3.4); phi_I is the full L/D when enabled. */
    bool includeInstructionFetch = false;
};

/**
 * Per-miss read stall in CPU cycles for a given stalling factor.
 * Non-pipelined: phi * mu_m.  Pipelined full-stalling: mu_p.
 */
double missPenalty(const Machine &machine, double phi);

/**
 * Eq. 2 generalised: execution time X in CPU cycles.
 *
 * @param workload the application {E, R, W, alpha}
 * @param machine  bus/line/memory timing
 * @param phi      stalling factor of the read-miss path; use
 *                 machine.lineOverBus() for a full-stalling cache.
 *                 Ignored (the full line transfer is used) when the
 *                 machine is pipelined, matching Sec. 4.4 which
 *                 pipelines full-blocking caches.
 */
double executionTime(const Workload &workload, const Machine &machine,
                     double phi,
                     const ExecutionModelOptions &options = {});

/** Eq. 2 for a full-stalling cache (phi = L/D). */
double executionTimeFS(const Workload &workload,
                       const Machine &machine,
                       const ExecutionModelOptions &options = {});

/**
 * Mean memory delay per data reference (Sec. 4.5):
 * (X - N_LS) / (Lambda_h + Lambda_m) = (X - E)/refs + 1, i.e. it
 * includes the one-cycle hit times, so systems with equal E, refs
 * and X always have equal mean delay.
 */
double meanMemoryDelay(const Workload &workload,
                       const Machine &machine, double phi,
                       const ExecutionModelOptions &options = {});

} // namespace uatm

#endif // UATM_CORE_EXECUTION_TIME_HH
