/**
 * @file
 * Implementation of the sweep-request schema.
 */

#include "serve/sweep_request.hh"

#include <cmath>
#include <map>

#include "cache/sweep.hh"
#include "cpu/stall_feature.hh"
#include "obs/json.hh"

namespace uatm::serve {

namespace {

// Must match exp/scenarios.cc so a served geometry sweep renders
// byte-identically to the offline one.
constexpr int kRatioPrecision = 6;

Status
typeError(const char *object, const std::string &field,
          const char *want)
{
    return Status::parseError("sweep request: \"", object, ".",
                              field, "\" must be ", want);
}

Expected<double>
asNumber(const char *object, const std::string &field,
         const obs::JsonValue &value)
{
    if (!value.isNumber())
        return typeError(object, field, "a number");
    return value.asNumber();
}

Expected<std::uint64_t>
asUint(const char *object, const std::string &field,
       const obs::JsonValue &value)
{
    auto number = asNumber(object, field, value);
    if (!number.ok())
        return number.status();
    const double v = number.value();
    if (v < 0.0 || v != std::floor(v))
        return typeError(object, field,
                         "a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

Expected<bool>
asBool(const char *object, const std::string &field,
       const obs::JsonValue &value)
{
    if (!value.isBool())
        return typeError(object, field, "a bool");
    return value.asBool();
}

/** Parse a string field against an enum's name() table. */
template <typename Enum, std::size_t N>
Expected<Enum>
asEnum(const char *object, const std::string &field,
       const obs::JsonValue &value, const Enum (&values)[N],
       const char *(*name)(Enum))
{
    if (!value.isString())
        return typeError(object, field, "a string");
    for (Enum candidate : values) {
        if (value.asString() == name(candidate))
            return candidate;
    }
    std::string known;
    for (Enum candidate : values) {
        if (!known.empty())
            known += ", ";
        known += name(candidate);
    }
    return Status::parseError("sweep request: \"", object, ".",
                              field, "\" must be one of ", known,
                              " (got \"", value.asString(), "\")");
}

Status
parseCacheConfig(const obs::JsonValue &json, CacheConfig &config)
{
    for (const auto &[field, value] : json.members()) {
        if (field == "size") {
            auto v = asUint("cache", field, value);
            if (!v.ok())
                return v.status();
            config.sizeBytes = v.value();
        } else if (field == "assoc") {
            auto v = asUint("cache", field, value);
            if (!v.ok())
                return v.status();
            config.assoc =
                static_cast<std::uint32_t>(v.value());
        } else if (field == "line") {
            auto v = asUint("cache", field, value);
            if (!v.ok())
                return v.status();
            config.lineBytes =
                static_cast<std::uint32_t>(v.value());
        } else if (field == "write_miss") {
            constexpr WriteMissPolicy kPolicies[] = {
                WriteMissPolicy::WriteAllocate,
                WriteMissPolicy::WriteAround};
            auto v = asEnum("cache", field, value, kPolicies,
                            writeMissPolicyName);
            if (!v.ok())
                return v.status();
            config.writeMiss = v.value();
        } else if (field == "write") {
            constexpr WritePolicy kPolicies[] = {
                WritePolicy::WriteBack, WritePolicy::WriteThrough};
            auto v = asEnum("cache", field, value, kPolicies,
                            writePolicyName);
            if (!v.ok())
                return v.status();
            config.write = v.value();
        } else if (field == "replacement") {
            constexpr ReplacementKind kKinds[] = {
                ReplacementKind::LRU, ReplacementKind::FIFO,
                ReplacementKind::Random,
                ReplacementKind::TreePLRU};
            auto v = asEnum("cache", field, value, kKinds,
                            replacementKindName);
            if (!v.ok())
                return v.status();
            config.replacement = v.value();
        } else if (field == "replacement_seed") {
            auto v = asUint("cache", field, value);
            if (!v.ok())
                return v.status();
            config.replacementSeed = v.value();
        } else {
            return Status::parseError(
                "sweep request: unknown cache field \"", field,
                "\"");
        }
    }
    return Status();
}

Status
parseMemoryConfig(const obs::JsonValue &json, MemoryConfig &config)
{
    for (const auto &[field, value] : json.members()) {
        if (field == "bus_width") {
            auto v = asUint("memory", field, value);
            if (!v.ok())
                return v.status();
            config.busWidthBytes =
                static_cast<std::uint32_t>(v.value());
        } else if (field == "cycle_time") {
            auto v = asUint("memory", field, value);
            if (!v.ok())
                return v.status();
            config.cycleTime = v.value();
        } else if (field == "pipelined") {
            auto v = asBool("memory", field, value);
            if (!v.ok())
                return v.status();
            config.pipelined = v.value();
        } else if (field == "pipeline_interval") {
            auto v = asUint("memory", field, value);
            if (!v.ok())
                return v.status();
            config.pipelineInterval = v.value();
        } else {
            return Status::parseError(
                "sweep request: unknown memory field \"", field,
                "\"");
        }
    }
    return Status();
}

Status
parseWriteBufferConfig(const obs::JsonValue &json,
                       WriteBufferConfig &config)
{
    for (const auto &[field, value] : json.members()) {
        if (field == "depth") {
            auto v = asUint("wbuf", field, value);
            if (!v.ok())
                return v.status();
            config.depth =
                static_cast<std::uint32_t>(v.value());
        } else if (field == "read_bypass") {
            auto v = asBool("wbuf", field, value);
            if (!v.ok())
                return v.status();
            config.readBypass = v.value();
        } else {
            return Status::parseError(
                "sweep request: unknown wbuf field \"", field,
                "\"");
        }
    }
    return Status();
}

Status
parseCpuConfig(const obs::JsonValue &json, CpuConfig &config)
{
    for (const auto &[field, value] : json.members()) {
        if (field == "feature") {
            constexpr StallFeature kFeatures[] = {
                StallFeature::FS,   StallFeature::BL,
                StallFeature::BNL1, StallFeature::BNL2,
                StallFeature::BNL3, StallFeature::NB};
            auto v = asEnum("cpu", field, value, kFeatures,
                            stallFeatureName);
            if (!v.ok())
                return v.status();
            config.feature = v.value();
        } else if (field == "mshrs") {
            auto v = asUint("cpu", field, value);
            if (!v.ok())
                return v.status();
            config.mshrs =
                static_cast<std::uint32_t>(v.value());
        } else if (field == "suppress_flush") {
            auto v = asBool("cpu", field, value);
            if (!v.ok())
                return v.status();
            config.suppressFlushTraffic = v.value();
        } else if (field == "prefetch") {
            constexpr PrefetchPolicy kPolicies[] = {
                PrefetchPolicy::None, PrefetchPolicy::OnMiss,
                PrefetchPolicy::Tagged};
            auto v = asEnum("cpu", field, value, kPolicies,
                            prefetchPolicyName);
            if (!v.ok())
                return v.status();
            config.prefetch = v.value();
        } else {
            return Status::parseError(
                "sweep request: unknown cpu field \"", field,
                "\"");
        }
    }
    return Status();
}

/** Re-render a parsed subtree to JSON text, so the workload spec
 *  can reuse WorkloadSpec::fromJson's strict schema validation. */
void
writeJsonValue(obs::JsonWriter &writer,
               const obs::JsonValue &value)
{
    switch (value.kind()) {
      case obs::JsonValue::Kind::Null:
        writer.rawValue("null");
        return;
      case obs::JsonValue::Kind::Bool:
        writer.value(value.asBool());
        return;
      case obs::JsonValue::Kind::Number:
        writer.value(value.asNumber());
        return;
      case obs::JsonValue::Kind::String:
        writer.value(value.asString());
        return;
      case obs::JsonValue::Kind::Array:
        writer.beginArray();
        for (const obs::JsonValue &item : value.items())
            writeJsonValue(writer, item);
        writer.endArray();
        return;
      case obs::JsonValue::Kind::Object:
        writer.beginObject();
        for (const auto &[key, member] : value.members()) {
            writer.key(key);
            writeJsonValue(writer, member);
        }
        writer.endObject();
        return;
    }
}

Expected<exp::WorkloadSpec>
workloadFromJsonValue(const obs::JsonValue &value)
{
    obs::JsonWriter writer;
    writeJsonValue(writer, value);
    return exp::WorkloadSpec::fromJson(writer.str());
}

/** One registered sweepable knob. */
struct AxisEntry
{
    exp::Scenario::Applier apply;
};

const std::map<std::string, AxisEntry> &
axisRegistry()
{
    static const std::map<std::string, AxisEntry> kAxes = {
        {"cache.size",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.cache.sizeBytes =
                 static_cast<std::uint64_t>(v.value);
         }}},
        {"cache.assoc",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.cache.assoc = static_cast<std::uint32_t>(v.value);
         }}},
        {"cache.line",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.cache.lineBytes =
                 static_cast<std::uint32_t>(v.value);
         }}},
        {"memory.bus_width",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.memory.busWidthBytes =
                 static_cast<std::uint32_t>(v.value);
         }}},
        {"memory.cycle_time",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.memory.cycleTime =
                 static_cast<std::uint64_t>(v.value);
         }}},
        {"memory.pipeline_interval",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.memory.pipelineInterval =
                 static_cast<std::uint64_t>(v.value);
         }}},
        {"wbuf.depth",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.writeBuffer.depth =
                 static_cast<std::uint32_t>(v.value);
         }}},
        {"cpu.mshrs",
         {[](exp::Point &p, const exp::AxisValue &v) {
             p.cpu.mshrs = static_cast<std::uint32_t>(v.value);
         }}},
    };
    return kAxes;
}

Status
parseAxis(const obs::JsonValue &json, exp::Scenario &scenario)
{
    if (!json.isObject())
        return Status::parseError(
            "sweep request: each axis must be an object");
    const obs::JsonValue *name_json = json.find("axis");
    if (!name_json || !name_json->isString())
        return Status::parseError(
            "sweep request: axis needs a string \"axis\" name");
    const std::string &name = name_json->asString();

    for (const auto &[field, value] : json.members()) {
        (void)value;
        if (field != "axis" && field != "values" &&
            field != "specs") {
            return Status::parseError(
                "sweep request: unknown axis field \"", field,
                "\"");
        }
    }

    if (name == "workload") {
        const obs::JsonValue *specs_json = json.find("specs");
        if (!specs_json || !specs_json->isArray() ||
            specs_json->size() == 0) {
            return Status::parseError(
                "sweep request: the workload axis needs a "
                "non-empty \"specs\" array");
        }
        if (json.find("values")) {
            return Status::parseError(
                "sweep request: the workload axis takes "
                "\"specs\", not \"values\"");
        }
        std::vector<exp::WorkloadSpec> specs;
        specs.reserve(specs_json->size());
        for (const obs::JsonValue &spec_json :
             specs_json->items()) {
            auto spec = workloadFromJsonValue(spec_json);
            if (!spec.ok())
                return spec.status();
            specs.push_back(std::move(spec).value());
        }
        scenario.sweepWorkloadSpecs(std::move(specs));
        return Status();
    }

    const auto it = axisRegistry().find(name);
    if (it == axisRegistry().end()) {
        std::string known;
        for (const std::string &axis : serveAxisNames()) {
            if (!known.empty())
                known += ", ";
            known += axis;
        }
        return Status::notFound("sweep request: unknown axis \"",
                                name, "\" (known: ", known, ")");
    }
    if (json.find("specs")) {
        return Status::parseError(
            "sweep request: only the workload axis takes "
            "\"specs\"");
    }
    const obs::JsonValue *values_json = json.find("values");
    if (!values_json || !values_json->isArray() ||
        values_json->size() == 0) {
        return Status::parseError("sweep request: axis \"", name,
                                  "\" needs a non-empty "
                                  "\"values\" array");
    }
    std::vector<double> values;
    values.reserve(values_json->size());
    for (const obs::JsonValue &value : values_json->items()) {
        if (!value.isNumber()) {
            return Status::parseError(
                "sweep request: axis \"", name,
                "\" values must be numbers");
        }
        values.push_back(value.asNumber());
    }
    scenario.sweep(name, values, it->second.apply);
    return Status();
}

} // namespace

const ServeKernel *
findServeKernel(const std::string &name)
{
    // The kernel's cells must stay byte-identical to the offline
    // exp layer: same runCacheSim call, same Cell::num precision.
    static const std::vector<ServeKernel> kKernels = {
        {"cache", "cache/v1",
         {"hit_ratio", "miss_ratio", "flush_ratio"},
         [](const exp::Point &point)
             -> Expected<std::vector<exp::Cell>> {
             auto source = point.workload.make();
             if (!source.ok())
                 return source.status();
             const auto run =
                 runCacheSim(point.cache, *source.value(),
                             point.refs, point.warmupRefs);
             return std::vector<exp::Cell>{
                 exp::Cell::num(run.hitRatio(), kRatioPrecision),
                 exp::Cell::num(run.missRatio(), kRatioPrecision),
                 exp::Cell::num(run.flushRatio(),
                                kRatioPrecision)};
         }},
    };
    for (const ServeKernel &kernel : kKernels) {
        if (kernel.name == name)
            return &kernel;
    }
    return nullptr;
}

std::vector<std::string>
serveKernelNames()
{
    return {"cache"};
}

std::vector<std::string>
serveAxisNames()
{
    std::vector<std::string> names;
    names.reserve(axisRegistry().size() + 1);
    for (const auto &[name, entry] : axisRegistry()) {
        (void)entry;
        names.push_back(name);
    }
    names.push_back("workload");
    return names;
}

Expected<SweepRequest>
parseSweepRequest(std::string_view json)
{
    const auto parsed = obs::parseJson(json);
    if (!parsed)
        return Status::parseError("sweep request: ", parsed.error);
    const obs::JsonValue &root = parsed.value;
    if (!root.isObject())
        return Status::parseError(
            "sweep request must be a JSON object");

    SweepRequest request;
    std::string name = "sweep";
    std::string description;
    const obs::JsonValue *axes = nullptr;

    for (const auto &[field, value] : root.members()) {
        if (field == "name") {
            if (!value.isString())
                return typeError("request", field, "a string");
            if (value.asString().empty())
                return Status::parseError(
                    "sweep request: \"name\" must not be empty");
            name = value.asString();
        } else if (field == "description") {
            if (!value.isString())
                return typeError("request", field, "a string");
            description = value.asString();
        } else if (field == "kernel") {
            if (!value.isString())
                return typeError("request", field, "a string");
            request.kernel = value.asString();
        } else if (field == "refs") {
            auto v = asUint("request", field, value);
            if (!v.ok())
                return v.status();
            if (v.value() == 0)
                return Status::parseError(
                    "sweep request: \"refs\" must be positive");
            request.scenario.refs = v.value();
        } else if (field == "warmup") {
            auto v = asUint("request", field, value);
            if (!v.ok())
                return v.status();
            request.scenario.warmupRefs = v.value();
        } else if (field == "threads") {
            auto v = asUint("request", field, value);
            if (!v.ok())
                return v.status();
            request.threads =
                static_cast<unsigned>(v.value());
        } else if (field == "workload") {
            auto spec = workloadFromJsonValue(value);
            if (!spec.ok())
                return spec.status();
            request.scenario.workload = std::move(spec).value();
        } else if (field == "cache") {
            if (!value.isObject())
                return typeError("request", field, "an object");
            const Status status =
                parseCacheConfig(value, request.scenario.cache);
            if (!status.ok())
                return status;
        } else if (field == "memory") {
            if (!value.isObject())
                return typeError("request", field, "an object");
            const Status status =
                parseMemoryConfig(value, request.scenario.memory);
            if (!status.ok())
                return status;
        } else if (field == "wbuf") {
            if (!value.isObject())
                return typeError("request", field, "an object");
            const Status status = parseWriteBufferConfig(
                value, request.scenario.writeBuffer);
            if (!status.ok())
                return status;
        } else if (field == "cpu") {
            if (!value.isObject())
                return typeError("request", field, "an object");
            const Status status =
                parseCpuConfig(value, request.scenario.cpu);
            if (!status.ok())
                return status;
        } else if (field == "axes") {
            if (!value.isArray())
                return typeError("request", field, "an array");
            axes = &value;
        } else {
            return Status::parseError(
                "sweep request: unknown field \"", field, "\"");
        }
    }

    if (!findServeKernel(request.kernel)) {
        std::string known;
        for (const std::string &kernel : serveKernelNames()) {
            if (!known.empty())
                known += ", ";
            known += kernel;
        }
        return Status::notFound(
            "sweep request: unknown kernel \"", request.kernel,
            "\" (known: ", known, ")");
    }

    // The scenario was default-constructed before name/description
    // were known; rebuild it around them, keeping the parsed
    // configuration.
    exp::Scenario scenario(name, description);
    scenario.cache = request.scenario.cache;
    scenario.memory = request.scenario.memory;
    scenario.writeBuffer = request.scenario.writeBuffer;
    scenario.cpu = request.scenario.cpu;
    scenario.workload = request.scenario.workload;
    scenario.refs = request.scenario.refs;
    scenario.warmupRefs = request.scenario.warmupRefs;
    request.scenario = std::move(scenario);

    if (axes) {
        for (const obs::JsonValue &axis : axes->items()) {
            const Status status =
                parseAxis(axis, request.scenario);
            if (!status.ok())
                return status;
        }
    }
    return request;
}

} // namespace uatm::serve
