/**
 * @file
 * Implementation of the content-addressed point cache.
 */

#include "serve/point_cache.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "exp/point_key.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm::serve {

namespace {

std::size_t
entryBytes(const std::string &key,
           const std::vector<exp::Cell> &cells)
{
    std::size_t bytes = key.size();
    for (const exp::Cell &cell : cells)
        bytes += cell.str().size() + sizeof(exp::Cell);
    return bytes;
}

/** Exact textual round-trip for a double ("%a" hex float; strtod
 *  reads it back bit-identically).  %.12g would lose the last
 *  digits and break the byte-identity contract on the JSON path. */
std::string
exactDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

} // namespace

PointCache::PointCache(PointCacheOptions options)
    : options_(std::move(options))
{
    UATM_ASSERT(options_.capacity > 0,
                "a zero-capacity point cache caches nothing");
}

std::string
PointCache::filePath(const std::string &key) const
{
    return options_.dir + "/" + exp::pointKeyDigest(key) + ".json";
}

std::optional<std::vector<exp::Cell>>
PointCache::lookup(const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++counters_.hits;
            return it->second->cells;
        }
    }
    if (!options_.dir.empty()) {
        // Disk faulting happens outside the lock: file IO must not
        // serialize the in-memory fast path of other workers.
        auto cells = loadFromDisk(key);
        if (cells) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.diskHits;
            insertLocked(key, *cells, /*write_disk=*/false);
            return cells;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    return std::nullopt;
}

void
PointCache::insert(const std::string &key,
                   const std::vector<exp::Cell> &cells)
{
    if (!options_.dir.empty())
        writeToDisk(key, cells);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.inserts;
    insertLocked(key, cells, /*write_disk=*/false);
}

void
PointCache::insertLocked(const std::string &key,
                         const std::vector<exp::Cell> &cells,
                         bool write_disk)
{
    (void)write_disk;
    auto it = index_.find(key);
    if (it != index_.end()) {
        residentBytes_ -= it->second->bytes;
        it->second->cells = cells;
        it->second->bytes = entryBytes(key, cells);
        residentBytes_ += it->second->bytes;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(Entry{key, cells, entryBytes(key, cells)});
    residentBytes_ += lru_.front().bytes;
    index_[key] = lru_.begin();
    while (lru_.size() > options_.capacity) {
        const Entry &victim = lru_.back();
        residentBytes_ -= victim.bytes;
        index_.erase(victim.key);
        lru_.pop_back();
        ++counters_.evictions;
    }
}

void
PointCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    lru_.clear();
    index_.clear();
    residentBytes_ = 0;
}

std::size_t
PointCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

std::size_t
PointCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return residentBytes_;
}

PointCacheCounters
PointCache::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
PointCache::registerStats(const obs::StatGroup &group) const
{
    group.addFormula(
        "hits", [this] { return double(counters().hits); },
        "point lookups served from memory", "count");
    group.addFormula(
        "misses", [this] { return double(counters().misses); },
        "point lookups that required computation", "count");
    group.addFormula(
        "inserts", [this] { return double(counters().inserts); },
        "computed points stored", "count");
    group.addFormula(
        "evictions",
        [this] { return double(counters().evictions); },
        "entries dropped by the LRU bound", "count");
    group.addFormula(
        "disk_hits",
        [this] { return double(counters().diskHits); },
        "misses faulted in from the on-disk store", "count");
    group.addFormula(
        "disk_errors",
        [this] { return double(counters().diskErrors); },
        "unreadable or mismatched on-disk entries", "count");
    group.addFormula(
        "entries", [this] { return double(size()); },
        "resident entries", "count");
    group.addFormula(
        "resident_bytes",
        [this] { return double(residentBytes()); },
        "approximate resident size", "bytes");
}

std::optional<std::vector<exp::Cell>>
PointCache::loadFromDisk(const std::string &key)
{
    std::ifstream in(filePath(key));
    if (!in)
        return std::nullopt;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto parsed = obs::parseJson(buffer.str());
    const auto fail = [this](const char *why,
                             const std::string &detail) {
        warn("point cache: dropping disk entry (", why,
             detail.empty() ? "" : ": ", detail, ")");
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.diskErrors;
        return std::nullopt;
    };
    if (!parsed || !parsed.value.isObject())
        return fail("bad JSON", parsed.error);
    const obs::JsonValue &root = parsed.value;
    if (root.numberOr("v", 0) != kPointCacheSchemaVersion)
        return fail("schema version mismatch", "");
    // The digest in the filename is not trusted: the stored key
    // must match exactly, so a 64-bit digest collision is a miss
    // rather than a silently wrong result.
    if (root.stringOr("key", "") != key)
        return std::nullopt;
    const obs::JsonValue *cells_json = root.find("cells");
    if (!cells_json || !cells_json->isArray())
        return fail("missing cells array", "");

    std::vector<exp::Cell> cells;
    cells.reserve(cells_json->size());
    for (const obs::JsonValue &cell : cells_json->items()) {
        if (!cell.isObject())
            return fail("cell is not an object", "");
        const obs::JsonValue *text = cell.find("text");
        if (!text || !text->isString())
            return fail("cell has no text", "");
        const std::string value_text =
            cell.stringOr("value", "0x0p+0");
        const double value =
            std::strtod(value_text.c_str(), nullptr);
        const obs::JsonValue *numeric = cell.find("numeric");
        const obs::JsonValue *error = cell.find("error");
        cells.push_back(exp::Cell::fromParts(
            text->asString(), value,
            numeric && numeric->isBool() && numeric->asBool(),
            error && error->isBool() && error->asBool()));
    }
    return cells;
}

void
PointCache::writeToDisk(const std::string &key,
                        const std::vector<exp::Cell> &cells)
{
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);

    obs::JsonWriter json;
    json.beginObject();
    json.keyValue("v", kPointCacheSchemaVersion);
    json.keyValue("key", key);
    json.key("cells").beginArray();
    for (const exp::Cell &cell : cells) {
        json.beginObject();
        json.keyValue("text", cell.str());
        // Hex float: exact textual round-trip of the double.
        json.keyValue("value", exactDouble(cell.value()));
        json.keyValue("numeric", cell.numeric());
        json.keyValue("error", cell.isError());
        json.endObject();
    }
    json.endArray();
    json.endObject();

    const std::string path = filePath(key);
    // Thread-unique temp name: concurrent workers inserting the
    // same point must not interleave into one temp file.
    const std::string tmp =
        path + ".tmp." +
        std::to_string(std::hash<std::thread::id>{}(
            std::this_thread::get_id()));
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out || !(out << json.str()) || !out.flush()) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.diskErrors;
            return;
        }
    }
    // rename() makes the entry appear atomically: a concurrent
    // reader sees the old file, the new file, or no file — never
    // a torn one.
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.diskErrors;
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.diskWrites;
}

} // namespace uatm::serve
