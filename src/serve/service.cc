/**
 * @file
 * Implementation of the sweep service.
 */

#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "exp/point_key.hh"
#include "exp/runner.hh"

namespace uatm::serve {

namespace {

double
nanosSince(std::chrono::steady_clock::time_point start)
{
    return double(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

} // namespace

SweepService::SweepService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache)
{
    if (options_.threads == 0) {
        options_.threads =
            std::max(1u, std::thread::hardware_concurrency());
    }
    registerStats();
}

void
SweepService::registerStats()
{
    obs::StatGroup serve(registry_, "serve");
    serve.addFormula(
        "inflight",
        [this] { return double(inflight_.load()); },
        "requests admitted and not yet answered", "count");
    serve.addFormula(
        "requests", [this] { return double(requests_.load()); },
        "sweep requests accepted for execution", "count");
    serve.addFormula(
        "requests_rejected",
        [this] { return double(requestsRejected_.load()); },
        "sweep requests bounced by admission control", "count");
    serve.addFormula(
        "requests_failed",
        [this] { return double(requestsFailed_.load()); },
        "sweep requests refused before execution", "count");
    serve.addFormula(
        "points", [this] { return double(pointsTotal_.load()); },
        "experiment points requested", "count");
    serve.addFormula(
        "points_computed",
        [this] { return double(pointsComputed_.load()); },
        "points priced by a kernel (cache misses)", "count");
    serve.addFormula(
        "points_failed",
        [this] { return double(pointsFailed_.load()); },
        "points degraded to typed error cells", "count");
    cache_.registerStats(serve.group("cache"));

    // Histograms go last: the returned references live inside the
    // registry's entry table, which may reallocate on the next
    // registration.  Nothing registers after this constructor.
    // The exposition layer appends the "_ns" unit suffix itself,
    // so the registered names stay unit-free.
    serve.addLatencyHistogram(
        "point", obs::LatencyHistogram(),
        "per-point service time, cache hits included", "ns");
    serve.addLatencyHistogram(
        "request", obs::LatencyHistogram(),
        "end-to-end sweep request latency", "ns");
    pointNanos_ =
        &registry_.findMutable("serve.point")->histogram;
    requestNanos_ =
        &registry_.findMutable("serve.request")->histogram;
}

Expected<SweepOutcome>
SweepService::runSweep(const SweepRequest &request)
{
    const auto start = std::chrono::steady_clock::now();

    const std::size_t points = request.scenario.pointCount();
    if (points > options_.maxPointsPerRequest) {
        ++requestsFailed_;
        return Status::outOfRange(
            "request sweeps ", points, " points, limit ",
            options_.maxPointsPerRequest,
            " (split the sweep into smaller requests)");
    }

    // Admission: the slot is taken optimistically and returned on
    // every exit path.  fetch_add keeps the check race-free — two
    // requests racing for the last slot cannot both win it.
    if (inflight_.fetch_add(1) >= options_.maxQueueDepth) {
        inflight_.fetch_sub(1);
        ++requestsRejected_;
        return Status::unavailable(
            "sweep queue is full (", options_.maxQueueDepth,
            " requests already admitted); retry later");
    }
    struct Slot
    {
        std::atomic<std::size_t> &counter;
        ~Slot() { counter.fetch_sub(1); }
    } slot{inflight_};

    const ServeKernel *kernel = findServeKernel(request.kernel);
    if (!kernel) {
        ++requestsFailed_;
        std::string known;
        for (const std::string &name : serveKernelNames())
            known += (known.empty() ? "" : ", ") + name;
        return Status::notFound("unknown kernel '", request.kernel,
                                "' (known: ", known, ")");
    }

    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> computed{0};
    const exp::Runner::Kernel cached =
        [this, kernel, &hits,
         &computed](const exp::Point &point)
        -> Expected<std::vector<exp::Cell>> {
        const auto point_start = std::chrono::steady_clock::now();
        auto key = exp::canonicalPointKey(point, kernel->id);
        if (!key.ok()) {
            // A point the cache cannot address (custom workload
            // spec) is refused, never silently cached or priced:
            // the Runner turns this into a typed error cell.
            return key.status();
        }
        if (auto cells = cache_.lookup(key.value())) {
            ++hits;
            pointNanos_->add(nanosSince(point_start));
            return *cells;
        }
        auto cells = kernel->eval(point);
        if (!cells.ok())
            return cells.status(); // failures are not cached
        cache_.insert(key.value(), cells.value());
        ++computed;
        pointNanos_->add(nanosSince(point_start));
        return std::move(cells).value();
    };

    exp::RunnerOptions runner_options;
    runner_options.threads =
        request.threads
            ? std::min(request.threads, options_.threads)
            : options_.threads;

    std::size_t failed = 0;
    // One sweep at a time on the pool; the rest of the admitted
    // queue (inflight_) waits here.
    std::unique_lock<std::mutex> run_lock(runMutex_);
    exp::Runner runner(runner_options);
    exp::ResultTable table =
        runner.run(request.scenario, kernel->columns, cached);
    failed = runner.lastStats().pointsFailed;
    run_lock.unlock();

    ++requests_;
    pointsTotal_ += points;
    pointsComputed_ += computed.load();
    pointsFailed_ += failed;
    const double nanos = nanosSince(start);
    requestNanos_->add(nanos);

    return SweepOutcome{std::move(table),
                        points,
                        std::size_t(computed.load()),
                        std::size_t(hits.load()),
                        failed,
                        nanos / 1e9};
}

std::string
SweepService::metricsText() const
{
    return registry_.dumpPrometheus("uatm");
}

} // namespace uatm::serve
