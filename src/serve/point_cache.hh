/**
 * @file
 * Content-addressed result cache over experiment points.
 *
 * The cache maps a canonical point key (exp/point_key.hh — the
 * full JSON description of everything a point's evaluation depends
 * on) to the value cells its kernel produced.  Because the key is
 * the complete content address and point evaluation is pure, a hit
 * is guaranteed byte-identical to recomputation: cells round-trip
 * through Cell::fromParts with their exact rendered text.
 *
 * Storage is an in-memory LRU bounded by entry count, optionally
 * backed by an on-disk store (one JSON file per entry, named by
 * the 64-bit key digest).  The digest is only a filename — the
 * full key is stored inside the file and verified on load, so a
 * digest collision degrades to a miss, never a wrong result.
 *
 * All methods are thread-safe (one mutex; the protected work is
 * map/list surgery and small string copies, which is far cheaper
 * than the kernels the cache is skipping).
 */

#ifndef UATM_SERVE_POINT_CACHE_HH
#define UATM_SERVE_POINT_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/result_table.hh"

namespace uatm::obs {
class StatGroup;
}

namespace uatm::serve {

/** Bumped whenever the on-disk entry layout changes shape. */
constexpr int kPointCacheSchemaVersion = 1;

struct PointCacheOptions
{
    /** In-memory entry cap; least-recently-used beyond it. */
    std::size_t capacity = 1 << 16;

    /** On-disk store directory; empty = memory only.  Created on
     *  first write when missing. */
    std::string dir;
};

struct PointCacheCounters
{
    std::uint64_t hits = 0;       ///< in-memory lookup hits
    std::uint64_t misses = 0;     ///< complete misses
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;  ///< LRU evictions (memory only)
    std::uint64_t diskHits = 0;   ///< misses served from disk
    std::uint64_t diskWrites = 0;
    std::uint64_t diskErrors = 0; ///< unreadable/mismatched files
};

class PointCache
{
  public:
    explicit PointCache(PointCacheOptions options = {});

    /**
     * Cells cached under @p key, refreshing its LRU position; a
     * disk-backed cache faults missing entries in from disk (and
     * promotes them to memory).  std::nullopt on a miss.
     */
    std::optional<std::vector<exp::Cell>>
    lookup(const std::string &key);

    /** Store @p cells under @p key (and on disk when backed).
     *  Re-inserting an existing key refreshes its value. */
    void insert(const std::string &key,
                const std::vector<exp::Cell> &cells);

    /** Drop every in-memory entry (disk files are kept — they are
     *  the persistence layer, not the working set). */
    void clear();

    std::size_t size() const;

    /** Approximate resident bytes (keys + cell text). */
    std::size_t residentBytes() const;

    PointCacheCounters counters() const;

    /**
     * Register hit/miss/size stats as formulas under @p group
     * (e.g. "cache.hits").  The formulas read this cache at dump
     * time, so the cache must outlive the registry dumps.
     */
    void registerStats(const obs::StatGroup &group) const;

  private:
    struct Entry
    {
        std::string key;
        std::vector<exp::Cell> cells;
        std::size_t bytes = 0;
    };

    using LruList = std::list<Entry>;

    PointCacheOptions options_;
    mutable std::mutex mutex_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<std::string, LruList::iterator> index_;
    std::size_t residentBytes_ = 0;
    PointCacheCounters counters_;

    std::string filePath(const std::string &key) const;
    void insertLocked(const std::string &key,
                      const std::vector<exp::Cell> &cells,
                      bool write_disk);
    std::optional<std::vector<exp::Cell>>
    loadFromDisk(const std::string &key);
    void writeToDisk(const std::string &key,
                     const std::vector<exp::Cell> &cells);
};

} // namespace uatm::serve

#endif // UATM_SERVE_POINT_CACHE_HH
