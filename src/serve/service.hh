/**
 * @file
 * The sweep service: parsed requests in, result tables out, with
 * the content-addressed PointCache between the Runner and the
 * kernels.
 *
 * SweepService is the daemon's brain and is deliberately free of
 * HTTP: tests and bench_served drive it in-process, the server
 * (serve/server.hh) merely maps its typed Statuses onto status
 * codes.  One service holds one PointCache, one StatRegistry, and
 * one worker-pool mutex; requests queue on the mutex and bounded
 * admission turns overload into typed errors instead of latency:
 *
 *  - more than maxPointsPerRequest points  -> OutOfRange (413);
 *  - more than maxQueueDepth requests already admitted
 *    (running + waiting)                   -> Unavailable (429).
 *
 * Each point is priced through the cache: canonical key (point_key)
 * -> lookup -> on miss, the kernel runs and the cells are inserted.
 * Key refusal (custom workload specs) and kernel failures become
 * per-point error Statuses — the Runner degrades them to typed
 * error cells, and failures are never cached.  Because keys are
 * complete content addresses and cells round-trip with their exact
 * rendered text, a warm request is byte-identical to a cold one.
 */

#ifndef UATM_SERVE_SERVICE_HH
#define UATM_SERVE_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "exp/result_table.hh"
#include "obs/registry.hh"
#include "serve/point_cache.hh"
#include "serve/sweep_request.hh"
#include "util/status.hh"

namespace uatm::serve {

struct ServiceOptions
{
    /** Worker threads per sweep; 0 = hardware concurrency.  A
     *  request's own "threads" field is clamped to this. */
    unsigned threads = 0;

    /** Point-count cap per request; OutOfRange (HTTP 413) beyond
     *  it — a bigger sweep must be split by the caller. */
    std::size_t maxPointsPerRequest = 4096;

    /** Admitted-request cap, running plus waiting; Unavailable
     *  (HTTP 429) beyond it.  0 rejects every request (useful to
     *  drain a daemon or to test the admission path). */
    std::size_t maxQueueDepth = 8;

    PointCacheOptions cache;
};

/** One completed sweep: the table plus its cache accounting. */
struct SweepOutcome
{
    exp::ResultTable table;
    std::size_t points = 0;    ///< rows in the table
    std::size_t computed = 0;  ///< points priced by the kernel
    std::size_t cacheHits = 0; ///< points served from the cache
    std::size_t failed = 0;    ///< points degraded to error cells
    double seconds = 0.0;      ///< wall time inside runSweep
};

class SweepService
{
  public:
    explicit SweepService(ServiceOptions options = {});

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Execute @p request.  Typed errors: OutOfRange when the sweep
     * exceeds maxPointsPerRequest, Unavailable when the admission
     * queue is full, NotFound for an unknown kernel name.  The
     * returned table is byte-identical (render for render) across
     * thread counts and across cold/warm cache states.
     */
    Expected<SweepOutcome> runSweep(const SweepRequest &request);

    PointCache &cache() { return cache_; }

    /** The service's registry: admission/throughput formulas, the
     *  cache group, and the request/point latency histograms.  Do
     *  not register further stats on it — the service holds
     *  pointers into the entry table (see registry.hh on
     *  invalidation). */
    obs::StatRegistry &stats() { return registry_; }

    /** Prometheus exposition of stats(), for GET /metrics. */
    std::string metricsText() const;

    /** Requests currently admitted (running + waiting). */
    std::size_t inflight() const { return inflight_.load(); }

    const ServiceOptions &options() const { return options_; }

  private:
    ServiceOptions options_;
    PointCache cache_;
    obs::StatRegistry registry_;

    /** Serializes sweeps on the worker pool: one sweep runs, the
     *  rest of the admitted queue waits here. */
    std::mutex runMutex_;

    std::atomic<std::size_t> inflight_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> requestsRejected_{0};
    std::atomic<std::uint64_t> requestsFailed_{0};
    std::atomic<std::uint64_t> pointsTotal_{0};
    std::atomic<std::uint64_t> pointsComputed_{0};
    std::atomic<std::uint64_t> pointsFailed_{0};

    /** Registered last; pointers stay valid because nothing
     *  registers after the constructor (see stats()). */
    obs::LatencyHistogram *pointNanos_ = nullptr;
    obs::LatencyHistogram *requestNanos_ = nullptr;

    void registerStats();
};

} // namespace uatm::serve

#endif // UATM_SERVE_SERVICE_HH
