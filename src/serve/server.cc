/**
 * @file
 * Implementation of the uatm-served route dispatch.
 */

#include "serve/server.hh"

#include <memory>
#include <utility>

#include "exp/workload_registry.hh"
#include "obs/json.hh"

namespace uatm::serve {

int
httpStatusForError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return 200;
      case ErrorCode::InvalidArgument:
      case ErrorCode::ParseError:
      case ErrorCode::NotFound:
        return 400;
      case ErrorCode::OutOfRange:
        return 413;
      case ErrorCode::Unavailable:
        return 429;
      case ErrorCode::IoError:
      case ErrorCode::KernelError:
        return 500;
    }
    return 500;
}

namespace {

HttpResponse
errorResponse(const Status &status)
{
    obs::JsonWriter json;
    json.beginObject()
        .keyValue("error", errorCodeName(status.code()))
        .keyValue("message", status.message())
        .endObject();
    HttpResponse response;
    response.status = httpStatusForError(status.code());
    response.contentType = "application/json";
    response.body = json.str() + "\n";
    return response;
}

HttpResponse
methodNotAllowed(const std::string &allow)
{
    HttpResponse response;
    response.status = 405;
    response.contentType = "text/plain; charset=utf-8";
    response.headers.emplace_back("Allow", allow);
    response.body = "method not allowed\n";
    return response;
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      service_(std::make_unique<SweepService>(options_.service))
{
}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    return http_.start(options_.http,
                       [this](const HttpRequest &request) {
                           return handle(request);
                       });
}

void
Server::stop()
{
    http_.stop();
}

HttpResponse
Server::handle(const HttpRequest &request)
{
    if (request.target == "/sweep") {
        if (request.method != "POST")
            return methodNotAllowed("POST");
        return handleSweep(request);
    }
    if (request.target == "/metrics") {
        if (request.method != "GET")
            return methodNotAllowed("GET");
        return handleMetrics();
    }
    if (request.target == "/healthz") {
        if (request.method != "GET")
            return methodNotAllowed("GET");
        HttpResponse response;
        response.body = "ok\n";
        return response;
    }
    if (request.target == "/workloads") {
        if (request.method != "GET")
            return methodNotAllowed("GET");
        return handleWorkloads();
    }
    // Route misses are an HTTP-level 404, not the 400 a NotFound
    // Status inside a known endpoint maps to (an unknown axis
    // name is the caller's scenario being wrong, not a bad URL).
    HttpResponse response = errorResponse(Status::notFound(
        "no route for '", request.target,
        "' (have /sweep, /metrics, /healthz, /workloads)"));
    response.status = 404;
    return response;
}

HttpResponse
Server::handleSweep(const HttpRequest &request)
{
    auto parsed = parseSweepRequest(request.body);
    if (!parsed.ok())
        return errorResponse(parsed.status());

    auto outcome = service_->runSweep(parsed.value());
    if (!outcome.ok())
        return errorResponse(outcome.status());

    // The streamer outlives this frame (it runs on the connection
    // thread after the headers go out), so the outcome moves into
    // shared ownership with the lambda.
    auto result = std::make_shared<SweepOutcome>(
        std::move(outcome).value());

    HttpResponse response;
    response.contentType = "application/x-ndjson";
    response.headers.emplace_back(
        "X-Uatm-Points", std::to_string(result->points));
    response.headers.emplace_back(
        "X-Uatm-Points-Computed",
        std::to_string(result->computed));
    response.headers.emplace_back(
        "X-Uatm-Cache-Hits", std::to_string(result->cacheHits));
    response.headers.emplace_back(
        "X-Uatm-Points-Failed", std::to_string(result->failed));
    response.streamer = [result](const HttpSink &sink) {
        const exp::ResultTable &table = result->table;
        for (std::size_t row = 0; row < table.rows(); ++row) {
            if (!sink(table.renderNdjsonRow(row)) || !sink("\n"))
                return; // client hung up; stop producing
        }
    };
    return response;
}

HttpResponse
Server::handleMetrics()
{
    HttpResponse response;
    // The versioned content type Prometheus scrapers expect for
    // the 0.0.4 text exposition format.
    response.contentType = "text/plain; version=0.0.4";
    response.body = service_->metricsText();
    return response;
}

HttpResponse
Server::handleWorkloads()
{
    const exp::WorkloadRegistry &registry =
        exp::WorkloadRegistry::instance();
    obs::JsonWriter json;
    json.beginObject();
    json.key("workloads").beginArray();
    for (const std::string &name : registry.names()) {
        json.beginObject().keyValue("name", name);
        auto described = registry.describe(name);
        json.keyValue("description",
                      described.ok() ? described.value() : "");
        json.endObject();
    }
    json.endArray();
    json.key("kernels").beginArray();
    for (const std::string &name : serveKernelNames())
        json.value(name);
    json.endArray();
    json.key("axes").beginArray();
    for (const std::string &name : serveAxisNames())
        json.value(name);
    json.endArray();
    json.endObject();

    HttpResponse response;
    response.contentType = "application/json";
    response.body = json.str() + "\n";
    return response;
}

} // namespace uatm::serve
