/**
 * @file
 * The wire schema of a sweep request: a JSON scenario description
 * parsed onto the existing exp::Scenario machinery.
 *
 * A request names a base machine (cache/memory/write-buffer/CPU
 * configs, every field optional over the library defaults), a
 * workload spec (the registered-method JSON from exp/workload_spec),
 * the swept axes, and the kernel that prices each point.  Axes are
 * addressed by registered name ("cache.size", "memory.bus_width",
 * ...) so the server never evaluates caller-supplied code — the
 * applier is looked up, the values come from the request.  The
 * special axis "workload" sweeps whole workload specs.
 *
 * Parsing is strict: unknown fields, unknown axis or kernel names,
 * and mistyped values are typed ParseError/NotFound Statuses (the
 * daemon maps them to HTTP 400), never aborts — request bodies are
 * untrusted input.
 *
 * Example:
 * {
 *   "name": "geometry_small",
 *   "kernel": "cache",
 *   "refs": 100000,
 *   "workload": {"method": "spec92",
 *                "params": {"profile": "nasa7"}, "seed": 1},
 *   "cache": {"size": 8192, "assoc": 2, "line": 32},
 *   "axes": [{"axis": "cache.size",
 *             "values": [4096, 8192, 16384]}],
 *   "threads": 2
 * }
 */

#ifndef UATM_SERVE_SWEEP_REQUEST_HH
#define UATM_SERVE_SWEEP_REQUEST_HH

#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "util/status.hh"

namespace uatm::serve {

/**
 * One kernel the serve layer can run.  The id feeds the canonical
 * point key, so it must change whenever the kernel's columns or
 * semantics do ("cache/v1" -> "cache/v2"), or stale cache entries
 * would alias the new meaning.
 */
struct ServeKernel
{
    std::string name;       ///< request-facing name ("cache")
    std::string id;         ///< cache-key id ("cache/v1")
    std::vector<std::string> columns;
    exp::Runner::Kernel eval;
};

/** Kernel by request name; nullptr when unknown. */
const ServeKernel *findServeKernel(const std::string &name);

/** Registered kernel names, for diagnostics. */
std::vector<std::string> serveKernelNames();

/** Registered axis names ("cache.size", ..., "workload"). */
std::vector<std::string> serveAxisNames();

/** A parsed request, ready for SweepService::runSweep. */
struct SweepRequest
{
    exp::Scenario scenario{"sweep"};
    std::string kernel = "cache";

    /** Requested worker threads; 0 = the server's default.  The
     *  service clamps it to its own pool size. */
    unsigned threads = 0;
};

/** Parse one request document (see the schema above). */
Expected<SweepRequest> parseSweepRequest(std::string_view json);

} // namespace uatm::serve

#endif // UATM_SERVE_SWEEP_REQUEST_HH
