/**
 * @file
 * The uatm-served HTTP surface: route dispatch over a SweepService.
 *
 * Four endpoints (docs/SERVING.md):
 *
 *   POST /sweep      scenario JSON in, NDJSON result rows out
 *                    (streamed; X-Uatm-* headers carry the cache
 *                    accounting);
 *   GET  /metrics    Prometheus exposition of the service stats;
 *   GET  /healthz    liveness probe;
 *   GET  /workloads  registered workload methods, kernels, axes.
 *
 * The server owns the typed-Status -> HTTP mapping and nothing
 * else: ParseError/NotFound/InvalidArgument are the caller's fault
 * (400), OutOfRange is a too-big request (413), Unavailable is a
 * full queue (429), anything else is ours (500).  Error bodies are
 * JSON {"error": <code>, "message": <text>} so clients never have
 * to scrape prose.
 */

#ifndef UATM_SERVE_SERVER_HH
#define UATM_SERVE_SERVER_HH

#include <cstdint>
#include <memory>

#include "serve/http.hh"
#include "serve/service.hh"
#include "util/status.hh"

namespace uatm::serve {

struct ServerOptions
{
    HttpServer::Options http;
    ServiceOptions service;
};

/** HTTP status for a typed error @p code (see file comment). */
int httpStatusForError(ErrorCode code);

class Server
{
  public:
    explicit Server(ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind and serve on a background thread. */
    Status start();

    /** Stop accepting and join every connection.  Idempotent. */
    void stop();

    bool running() const { return http_.running(); }

    /** Bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return http_.port(); }

    SweepService &service() { return *service_; }

    /** Route one request; public so tests can exercise dispatch
     *  without sockets. */
    HttpResponse handle(const HttpRequest &request);

  private:
    ServerOptions options_;
    std::unique_ptr<SweepService> service_;
    HttpServer http_;

    HttpResponse handleSweep(const HttpRequest &request);
    HttpResponse handleMetrics();
    HttpResponse handleWorkloads();
};

} // namespace uatm::serve

#endif // UATM_SERVE_SERVER_HH
