/**
 * @file
 * Minimal HTTP/1.1 plumbing for the serve layer: a loopback-bound
 * listener with one thread per connection, and the matching
 * blocking client used by tools/uatm_client and the tests.
 *
 * This is deliberately not a general web server.  It speaks just
 * enough HTTP for the daemon's four endpoints: one request per
 * connection (every response carries "Connection: close"), bodies
 * delimited by Content-Length on the way in and by Content-Length
 * or connection close (the streaming path) on the way out.  No
 * third-party dependencies — raw POSIX sockets.
 *
 * Responses are either buffered (status + body, Content-Length
 * set by the server) or streamed: a handler that sets
 * HttpResponse::streamer gets called back with a write sink after
 * the header block goes out, which is how /sweep ships NDJSON
 * rows without holding a second copy of the table.
 */

#ifndef UATM_SERVE_HTTP_HH
#define UATM_SERVE_HTTP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.hh"

namespace uatm::serve {

/** One parsed request.  Header names are stored lowercased. */
struct HttpRequest
{
    std::string method; ///< "GET", "POST", ...
    std::string target; ///< request path, e.g. "/sweep"
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by lowercase name; nullptr when absent. */
    const std::string *header(const std::string &name) const;
};

/** Write sink handed to a streaming response body.  Returns false
 *  when the client is gone; the producer should stop. */
using HttpSink = std::function<bool(std::string_view)>;

struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    /** Extra headers, sent verbatim (name, value). */
    std::vector<std::pair<std::string, std::string>> headers;

    /** Buffered body (ignored when @ref streamer is set). */
    std::string body;

    /**
     * Streaming body: called once with the write sink after the
     * status line and headers are out.  The response is delimited
     * by connection close, so the producer just writes chunks and
     * returns.
     */
    std::function<void(const HttpSink &)> streamer;
};

/** "OK", "Bad Request", ... for the codes the daemon uses. */
const char *httpStatusReason(int status);

class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    struct Options
    {
        /** Bind address; loopback by default (the daemon is not
         *  hardened for the open internet). */
        std::string bindAddress = "127.0.0.1";

        /** 0 = ephemeral; the bound port is readable via port(). */
        std::uint16_t port = 0;

        int backlog = 16;

        /** Request line + headers cap; 431 beyond it. */
        std::size_t maxHeaderBytes = 64 * 1024;

        /** Request body cap; 413 beyond it. */
        std::size_t maxBodyBytes = 8 * 1024 * 1024;

        /** Concurrent connection cap; 503 beyond it. */
        unsigned maxConnections = 64;

        /** Per-connection socket read/write timeout. */
        unsigned ioTimeoutSeconds = 30;
    };

    HttpServer() = default;
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind, listen, and start the accept loop on a background
     * thread.  @p handler runs on a per-connection thread and may
     * block (the sweep endpoint does); malformed requests are
     * answered with 400/413/431/503 before it is ever called.
     */
    Status start(const Options &options, Handler handler);

    /** Stop accepting, close the listener, join every thread.
     *  Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** Bound port (resolves an ephemeral request); 0 when not
     *  running. */
    std::uint16_t port() const { return port_; }

  private:
    struct Connection
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    Options options_;
    Handler handler_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::thread acceptThread_;
    std::mutex connectionsMutex_;
    std::vector<Connection> connections_;
    std::atomic<unsigned> activeConnections_{0};

    void acceptLoop();
    void handleConnection(int fd);
    void reapFinished();
};

/** One buffered client-side response. */
struct HttpClientResponse
{
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Header value by lowercase name; nullptr when absent. */
    const std::string *header(const std::string &name) const;
};

/**
 * Blocking one-shot HTTP/1.1 client: connect, send one request,
 * read the response (Content-Length or to connection close),
 * disconnect.  IoError Status on connect/socket failures; an HTTP
 * error status from the server is NOT a Status error — callers
 * check response.status.
 */
Expected<HttpClientResponse>
httpFetch(const std::string &host, std::uint16_t port,
          const std::string &method, const std::string &target,
          const std::string &body = "",
          const std::string &content_type = "application/json",
          unsigned timeout_seconds = 60);

} // namespace uatm::serve

#endif // UATM_SERVE_HTTP_HH
