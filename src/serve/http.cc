/**
 * @file
 * Implementation of the minimal HTTP listener and client.
 */

#include "serve/http.hh"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace uatm::serve {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

void
setIoTimeout(int fd, unsigned seconds)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** send() the whole buffer; false on any failure.  MSG_NOSIGNAL
 *  keeps a dead client from killing the process with SIGPIPE. */
bool
sendAll(int fd, std::string_view data)
{
    while (!data.empty()) {
        const ssize_t n = ::send(fd, data.data(), data.size(),
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

/** Read until the \r\n\r\n header terminator (keeping any body
 *  prefix read past it in @p out), capped at @p max_bytes.
 *  Returns false on socket error/timeout or an oversized header
 *  block (@p overflow distinguishes the latter). */
bool
readHeaderBlock(int fd, std::string &out, std::size_t max_bytes,
                bool *overflow)
{
    *overflow = false;
    char buf[4096];
    while (out.find("\r\n\r\n") == std::string::npos) {
        if (out.size() > max_bytes) {
            *overflow = true;
            return false;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        out.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

struct ParsedHead
{
    std::string method;
    std::string target;
    std::vector<std::pair<std::string, std::string>> headers;
};

/** Parse "METHOD target HTTP/1.x\r\nName: value\r\n..."; false on
 *  anything malformed. */
bool
parseHead(std::string_view head, ParsedHead &out)
{
    std::size_t line_end = head.find("\r\n");
    if (line_end == std::string_view::npos)
        return false;
    const std::string_view request_line = head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0)
        return false;
    const std::size_t sp2 = request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1)
        return false;
    const std::string_view version = request_line.substr(sp2 + 1);
    if (version.rfind("HTTP/1.", 0) != 0)
        return false;
    out.method = std::string(request_line.substr(0, sp1));
    out.target =
        std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));

    std::size_t pos = line_end + 2;
    while (pos < head.size()) {
        line_end = head.find("\r\n", pos);
        if (line_end == std::string_view::npos)
            line_end = head.size();
        const std::string_view line =
            head.substr(pos, line_end - pos);
        pos = line_end + 2;
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return false;
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() &&
               (value.front() == ' ' || value.front() == '\t'))
            value.remove_prefix(1);
        while (!value.empty() &&
               (value.back() == ' ' || value.back() == '\t'))
            value.remove_suffix(1);
        out.headers.emplace_back(
            toLower(std::string(line.substr(0, colon))),
            std::string(value));
    }
    return true;
}

const std::string *
findHeader(
    const std::vector<std::pair<std::string, std::string>> &headers,
    const std::string &name)
{
    for (const auto &[key, value] : headers) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

std::string
responseHead(int status, const std::string &content_type,
             const std::vector<std::pair<std::string, std::string>>
                 &extra,
             bool has_length, std::size_t length)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       httpStatusReason(status) + "\r\n";
    head += "Content-Type: " + content_type + "\r\n";
    for (const auto &[name, value] : extra)
        head += name + ": " + value + "\r\n";
    if (has_length)
        head +=
            "Content-Length: " + std::to_string(length) + "\r\n";
    head += "Connection: close\r\n\r\n";
    return head;
}

void
sendSimple(int fd, int status, const std::string &body)
{
    const std::string head = responseHead(
        status, "text/plain; charset=utf-8", {}, true, body.size());
    if (sendAll(fd, head))
        sendAll(fd, body);
}

} // namespace

const std::string *
HttpRequest::header(const std::string &name) const
{
    return findHeader(headers, name);
}

const std::string *
HttpClientResponse::header(const std::string &name) const
{
    return findHeader(headers, name);
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 413:
        return "Payload Too Large";
      case 429:
        return "Too Many Requests";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

HttpServer::~HttpServer()
{
    stop();
}

Status
HttpServer::start(const Options &options, Handler handler)
{
    if (running_.load())
        return Status::invalidArgument("server already running");
    options_ = options;
    handler_ = std::move(handler);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::ioError("socket: ", std::strerror(errno));

    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.bindAddress.c_str(),
                  &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::invalidArgument("bad bind address '",
                                       options_.bindAddress, "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError("bind ", options_.bindAddress, ":",
                               options_.port, ": ",
                               std::strerror(err));
    }
    if (::listen(listenFd_, options_.backlog) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError("listen: ", std::strerror(err));
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        return Status::ioError("getsockname: ",
                               std::strerror(err));
    }
    port_ = ntohs(bound.sin_port);

    running_.store(true);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
HttpServer::stop()
{
    if (!running_.exchange(false)) {
        // Not running: still join a failed-start accept thread.
        if (acceptThread_.joinable())
            acceptThread_.join();
        return;
    }
    // Closing the listener unblocks accept() with an error.
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<Connection> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (auto &connection : connections) {
        if (connection.thread.joinable())
            connection.thread.join();
    }
    port_ = 0;
}

void
HttpServer::reapFinished()
{
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    std::vector<Connection> still_running;
    still_running.reserve(connections_.size());
    for (auto &connection : connections_) {
        if (connection.done->load()) {
            if (connection.thread.joinable())
                connection.thread.join();
        } else {
            still_running.push_back(std::move(connection));
        }
    }
    connections_.swap(still_running);
}

void
HttpServer::acceptLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // The listener was closed by stop(), or something is
            // badly wrong; either way the loop is done.
            break;
        }
        if (!running_.load()) {
            ::close(fd);
            break;
        }
        reapFinished();
        if (activeConnections_.load() >= options_.maxConnections) {
            sendSimple(fd, 503, "connection limit reached\n");
            ::close(fd);
            continue;
        }
        activeConnections_.fetch_add(1);
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread thread([this, fd, done] {
            handleConnection(fd);
            activeConnections_.fetch_sub(1);
            done->store(true);
        });
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.push_back(
            Connection{std::move(thread), std::move(done)});
    }
}

void
HttpServer::handleConnection(int fd)
{
    setIoTimeout(fd, options_.ioTimeoutSeconds);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::string data;
    bool overflow = false;
    if (!readHeaderBlock(fd, data, options_.maxHeaderBytes,
                         &overflow)) {
        if (overflow)
            sendSimple(fd, 431, "header block too large\n");
        ::close(fd);
        return;
    }
    const std::size_t head_end = data.find("\r\n\r\n");
    ParsedHead head;
    if (!parseHead(std::string_view(data).substr(0, head_end + 2),
                   head)) {
        sendSimple(fd, 400, "malformed request\n");
        ::close(fd);
        return;
    }

    HttpRequest request;
    request.method = std::move(head.method);
    request.target = std::move(head.target);
    request.headers = std::move(head.headers);
    request.body = data.substr(head_end + 4);

    if (const std::string *length =
            request.header("content-length")) {
        char *end = nullptr;
        errno = 0;
        const unsigned long long want =
            std::strtoull(length->c_str(), &end, 10);
        if (errno != 0 || end == length->c_str() || *end != '\0') {
            sendSimple(fd, 400, "bad Content-Length\n");
            ::close(fd);
            return;
        }
        if (want > options_.maxBodyBytes) {
            sendSimple(fd, 413, "request body too large\n");
            ::close(fd);
            return;
        }
        char buf[4096];
        while (request.body.size() < want) {
            const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                ::close(fd);
                return;
            }
            request.body.append(buf,
                                static_cast<std::size_t>(n));
        }
        request.body.resize(want);
    } else if (!request.body.empty()) {
        sendSimple(fd, 400,
                   "request body without Content-Length\n");
        ::close(fd);
        return;
    }

    HttpResponse response;
    try {
        response = handler_(request);
    } catch (const std::exception &e) {
        sendSimple(fd, 500,
                   std::string("internal error: ") + e.what() +
                       "\n");
        ::close(fd);
        return;
    }

    if (response.streamer) {
        const std::string header_block = responseHead(
            response.status, response.contentType,
            response.headers, false, 0);
        if (sendAll(fd, header_block)) {
            const HttpSink sink =
                [fd](std::string_view chunk) -> bool {
                return sendAll(fd, chunk);
            };
            response.streamer(sink);
        }
    } else {
        const std::string header_block = responseHead(
            response.status, response.contentType,
            response.headers, true, response.body.size());
        if (sendAll(fd, header_block))
            sendAll(fd, response.body);
    }
    ::shutdown(fd, SHUT_WR);
    // Drain whatever the client still had in flight so its send()
    // doesn't see a reset, then close.
    char drain[1024];
    while (::recv(fd, drain, sizeof(drain), 0) > 0) {}
    ::close(fd);
}

Expected<HttpClientResponse>
httpFetch(const std::string &host, std::uint16_t port,
          const std::string &method, const std::string &target,
          const std::string &body,
          const std::string &content_type,
          unsigned timeout_seconds)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *list = nullptr;
    const int rc = ::getaddrinfo(host.c_str(),
                                 std::to_string(port).c_str(),
                                 &hints, &list);
    if (rc != 0) {
        return Status::ioError("resolve ", host, ": ",
                               gai_strerror(rc));
    }

    int fd = -1;
    for (addrinfo *ai = list; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(list);
    if (fd < 0) {
        return Status::ioError("connect ", host, ":", port, ": ",
                               std::strerror(errno));
    }
    setIoTimeout(fd, timeout_seconds);

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: " + host + "\r\n";
    if (!body.empty()) {
        request += "Content-Type: " + content_type + "\r\n";
        request +=
            "Content-Length: " + std::to_string(body.size()) +
            "\r\n";
    }
    request += "Connection: close\r\n\r\n";
    request += body;
    if (!sendAll(fd, request)) {
        const int err = errno;
        ::close(fd);
        return Status::ioError("send: ", std::strerror(err));
    }

    std::string data;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const std::size_t head_end = data.find("\r\n\r\n");
    if (head_end == std::string::npos)
        return Status::parseError("truncated HTTP response");
    const std::string_view head =
        std::string_view(data).substr(0, head_end + 2);
    const std::size_t line_end = head.find("\r\n");
    const std::string_view status_line = head.substr(0, line_end);
    if (status_line.rfind("HTTP/1.", 0) != 0)
        return Status::parseError("bad HTTP status line");
    const std::size_t sp = status_line.find(' ');
    if (sp == std::string_view::npos)
        return Status::parseError("bad HTTP status line");

    HttpClientResponse response;
    response.status = std::atoi(
        std::string(status_line.substr(sp + 1, 3)).c_str());

    std::size_t pos = line_end + 2;
    while (pos < head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = head.size();
        const std::string_view line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (line.empty())
            break;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos)
            continue;
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ')
            value.remove_prefix(1);
        response.headers.emplace_back(
            toLower(std::string(line.substr(0, colon))),
            std::string(value));
    }
    response.body = data.substr(head_end + 4);
    if (const std::string *length =
            response.header("content-length")) {
        const std::size_t want = static_cast<std::size_t>(
            std::strtoull(length->c_str(), nullptr, 10));
        if (response.body.size() < want)
            return Status::parseError(
                "truncated HTTP body: got ",
                response.body.size(), " of ", want, " bytes");
        response.body.resize(want);
    }
    return response;
}

} // namespace uatm::serve
