/**
 * @file
 * Implementation of the memory scheduler / write buffer.
 *
 * Buffered writes occupy the port one bus cycle (one D-byte chunk,
 * mu_m cycles) at a time, so an arriving read waits at most until
 * the current chunk boundary — the standard bus-arbitration model
 * and the behaviour the paper's best-case write-buffer analysis
 * (Sec. 4.3) presumes.  Synchronous writes (no buffer) keep the
 * port for the whole transfer, matching Eq. 2's flush and W terms.
 */

#include "memory/write_buffer.hh"

#include <algorithm>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm {

MemoryScheduler::MemoryScheduler(const MemoryTiming &timing,
                                 const WriteBufferConfig &wbuf)
    : timing_(timing), wbuf_(wbuf)
{
}

Cycles
MemoryScheduler::transferTime(std::uint32_t bytes) const
{
    if (bytes <= timing_.config().busWidthBytes)
        return timing_.singleTransferTime();
    return timing_.lineTransferTime(bytes);
}

std::uint32_t
MemoryScheduler::chunksFor(std::uint32_t bytes) const
{
    return timing_.chunksPerLine(bytes);
}

void
MemoryScheduler::drainTo(Cycles now)
{
    // Queued write chunks opportunistically claim the idle port;
    // a chunk that could start strictly before `now` has already
    // begun (and completes) by the time an event at `now` competes
    // for the port.
    while (!queue_.empty()) {
        PendingWrite &front = queue_.front();
        const Cycles start = std::max(front.postedAt, busyUntil_);
        if (start >= now)
            break;
        busyUntil_ = start + timing_.config().cycleTime;
        ++drainedChunks_;
        if (--front.chunksLeft == 0)
            queue_.pop_front();
    }
}

Cycles
MemoryScheduler::drainAllAfter(Cycles now)
{
    while (!queue_.empty()) {
        PendingWrite &front = queue_.front();
        const Cycles start =
            std::max({front.postedAt, busyUntil_, now});
        busyUntil_ = start + timing_.config().cycleTime;
        ++drainedChunks_;
        if (--front.chunksLeft == 0)
            queue_.pop_front();
    }
    return std::max(busyUntil_, now);
}

ReadGrant
MemoryScheduler::requestRead(Cycles now, std::uint32_t line_bytes)
{
    drainTo(now);

    Cycles earliest = busyUntil_;
    if (!wbuf_.readBypass && !queue_.empty()) {
        // Strict FIFO ordering: all older writes go first.
        earliest = drainAllAfter(now);
    }

    ReadGrant grant;
    grant.start = std::max(now, earliest);
    grant.busWait = grant.start - now;
    readWaitCycles_ += grant.busWait;
    busyUntil_ = grant.start + timing_.lineTransferTime(line_bytes);
    return grant;
}

Cycles
MemoryScheduler::postWrite(Cycles now, std::uint32_t bytes)
{
    drainTo(now);

    if (wbuf_.depth == 0) {
        // Synchronous write: the CPU owns the port for the whole
        // transfer (the paper's no-write-buffer flush/W terms).
        const Cycles start = std::max(now, busyUntil_);
        busyUntil_ = start + transferTime(bytes);
        return busyUntil_;
    }

    Cycles resume = now;
    while (queue_.size() >= wbuf_.depth) {
        // Buffer full: the CPU waits until the oldest entry has
        // fully retired, freeing one slot.
        ++fullEvents_;
        PendingWrite &front = queue_.front();
        while (front.chunksLeft > 0) {
            const Cycles start =
                std::max({front.postedAt, busyUntil_, resume});
            busyUntil_ = start + timing_.config().cycleTime;
            ++drainedChunks_;
            --front.chunksLeft;
        }
        queue_.pop_front();
        resume = std::max(resume, busyUntil_);
    }
    queue_.push_back(PendingWrite{resume, chunksFor(bytes)});
    return resume;
}

std::size_t
MemoryScheduler::pendingWrites() const
{
    return queue_.size();
}

void
MemoryScheduler::registerStats(obs::StatRegistry &registry,
                               const std::string &prefix) const
{
    const obs::StatGroup root(registry, prefix);
    root.addScalar("depth", wbuf_.depth,
                   "write-buffer entries (0 = synchronous)",
                   "entries");
    root.addScalar("read_bypass", wbuf_.readBypass ? 1.0 : 0.0,
                   "reads jump ahead of queued write chunks",
                   "bool");
    root.addScalar("read_wait_cycles",
                   static_cast<double>(readWaitCycles_),
                   "cycles reads waited on the write port",
                   "cycles");
    root.addScalar("buffer_full_events",
                   static_cast<double>(fullEvents_),
                   "CPU stalls on a full write buffer", "count");
    root.addScalar("drained_chunks",
                   static_cast<double>(drainedChunks_),
                   "buffered write chunks retired onto the bus",
                   "count");
    root.addScalar("pending_writes",
                   static_cast<double>(queue_.size()),
                   "writes still queued at dump time", "count");
}

void
MemoryScheduler::reset()
{
    busyUntil_ = 0;
    queue_.clear();
    readWaitCycles_ = 0;
    fullEvents_ = 0;
    drainedChunks_ = 0;
}

} // namespace uatm
