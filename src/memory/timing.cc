/**
 * @file
 * Implementation of the bus/memory timing calculator.
 */

#include "memory/timing.hh"

#include <sstream>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm {

Status
MemoryConfig::validate() const
{
    const bool width_ok =
        busWidthBytes == 4 || busWidthBytes == 8 ||
        busWidthBytes == 16 || busWidthBytes == 32;
    if (!width_ok) {
        return Status::invalidArgument(
            "bus width D must be one of {4, 8, 16, 32} bytes, got ",
            busWidthBytes);
    }
    if (cycleTime == 0) {
        return Status::invalidArgument(
            "memory cycle time must be positive");
    }
    if (pipelined && pipelineInterval == 0) {
        return Status::invalidArgument(
            "pipeline interval q must be positive");
    }
    if (pipelined && pipelineInterval > cycleTime) {
        return Status::invalidArgument(
            "pipeline interval q = ", pipelineInterval,
            " exceeds the memory cycle time ", cycleTime,
            "; the pipeline could not sustain its own stages");
    }
    return Status();
}

std::string
MemoryConfig::describe() const
{
    std::ostringstream os;
    os << "D=" << busWidthBytes << "B mu_m=" << cycleTime;
    if (pipelined)
        os << " pipelined q=" << pipelineInterval;
    return os.str();
}

MemoryTiming::MemoryTiming(const MemoryConfig &config)
    : config_(config)
{
    okOrThrow(config_.validate());
}

std::uint32_t
MemoryTiming::chunksPerLine(std::uint32_t line_bytes) const
{
    UATM_ASSERT(line_bytes > 0, "line size must be positive");
    // A transfer smaller than the bus still occupies one cycle.
    return (line_bytes + config_.busWidthBytes - 1) /
           config_.busWidthBytes;
}

Cycles
MemoryTiming::lineTransferTime(std::uint32_t line_bytes) const
{
    const std::uint32_t n = chunksPerLine(line_bytes);
    if (!config_.pipelined)
        return static_cast<Cycles>(n) * config_.cycleTime;
    // Eq. 9: mu_p = mu_m + q(L/D - 1).
    return config_.cycleTime +
           config_.pipelineInterval * static_cast<Cycles>(n - 1);
}

std::vector<Cycles>
MemoryTiming::chunkCompletionTimes(Cycles start,
                                   std::uint32_t line_bytes) const
{
    const std::uint32_t n = chunksPerLine(line_bytes);
    std::vector<Cycles> times(n);
    for (std::uint32_t k = 0; k < n; ++k) {
        if (!config_.pipelined)
            times[k] = start + static_cast<Cycles>(k + 1) *
                                   config_.cycleTime;
        else
            times[k] = start + config_.cycleTime +
                       static_cast<Cycles>(k) *
                           config_.pipelineInterval;
    }
    return times;
}

void
MemoryTiming::registerStats(obs::StatRegistry &registry,
                            const std::string &prefix) const
{
    const obs::StatGroup root(registry, prefix);
    root.addScalar("bus_width_bytes", config_.busWidthBytes,
                   "external data bus width D", "bytes");
    root.addScalar("cycle_time", static_cast<double>(
                       config_.cycleTime),
                   "memory cycle time mu_m per D-byte transfer",
                   "cycles");
    root.addScalar("pipelined", config_.pipelined ? 1.0 : 0.0,
                   "pipelined memory system (Sec. 4.4)", "bool");
    root.addScalar("pipeline_interval", static_cast<double>(
                       config_.pipelineInterval),
                   "pipelined issue interval q (Eq. 9)", "cycles");
}

} // namespace uatm
