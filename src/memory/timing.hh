/**
 * @file
 * Memory-system timing: bus width D, memory cycle time mu_m per
 * D-byte transfer, and the pipelined option with issue interval q
 * (paper Eq. 9: mu_p = mu_m + q(L/D - 1)).
 */

#ifndef UATM_MEMORY_TIMING_HH
#define UATM_MEMORY_TIMING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"

namespace uatm::obs {
class StatRegistry;
} // namespace uatm::obs

namespace uatm {

/** Cycle counts are in CPU clock cycles. */
using Cycles = std::uint64_t;

/**
 * Timing parameters of the external bus + memory system.
 */
struct MemoryConfig
{
    /** Processor external data bus width D in bytes (4..32). */
    std::uint32_t busWidthBytes = 4;

    /** Memory cycle time mu_m: CPU cycles per D-byte read/write. */
    Cycles cycleTime = 8;

    /** Pipelined memory system (Sec. 4.4). */
    bool pipelined = false;

    /** Cycles before the pipelined memory accepts the next request
     *  (q in Eq. 9); q = 2 is the paper's "best implementation". */
    Cycles pipelineInterval = 2;

    /** OK when widths/cycles are sane; InvalidArgument otherwise. */
    Status validate() const;

    /** "D=4 mu_m=8 (pipelined q=2)" style summary. */
    std::string describe() const;
};

/**
 * Pure timing calculator for line transfers on the bus.
 */
class MemoryTiming
{
  public:
    /** Throws StatusError when @p config fails validate(). */
    explicit MemoryTiming(const MemoryConfig &config);

    const MemoryConfig &config() const { return config_; }

    /** Number of D-byte chunks in an @p line_bytes transfer. */
    std::uint32_t chunksPerLine(std::uint32_t line_bytes) const;

    /**
     * Total bus occupancy of an @p line_bytes transfer:
     * non-pipelined (L/D)*mu_m; pipelined mu_m + q(L/D - 1).
     */
    Cycles lineTransferTime(std::uint32_t line_bytes) const;

    /** Occupancy of a single <= D-byte transfer: mu_m either way. */
    Cycles singleTransferTime() const { return config_.cycleTime; }

    /**
     * Completion time of each chunk of a line transfer that starts
     * at @p start, in transfer order (element 0 = first chunk
     * delivered).  Non-pipelined chunk k completes at
     * start + (k+1)*mu_m; pipelined at start + mu_m + k*q.
     */
    std::vector<Cycles> chunkCompletionTimes(
        Cycles start, std::uint32_t line_bytes) const;

    /**
     * Register the memory-system parameters as config stats under
     * @p prefix, e.g. "mem" -> "mem.bus_width_bytes".
     */
    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix) const;

  private:
    MemoryConfig config_;
};

} // namespace uatm

#endif // UATM_MEMORY_TIMING_HH
