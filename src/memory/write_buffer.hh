/**
 * @file
 * Single-ported memory scheduler with an optional read-bypassing
 * write buffer (paper Sec. 4.3).
 *
 * The scheduler owns the notion of "when is the memory busy".
 * Writes (cache-line flushes, write-around stores) are either
 * performed synchronously (no buffer — the CPU stalls for the whole
 * transfer, Eq. 2's flush and W terms) or posted into a FIFO whose
 * entries retire chunk-by-chunk (one D-byte bus cycle at a time)
 * whenever the memory is otherwise idle.  Reads bypass queued
 * chunks but cannot preempt the chunk currently on the bus, so a
 * read waits at most one mu_m on write traffic — which is why the
 * paper can treat buffered flushes as (almost) completely hidden.
 */

#ifndef UATM_MEMORY_WRITE_BUFFER_HH
#define UATM_MEMORY_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <string>

#include "memory/timing.hh"

namespace uatm::obs {
class StatRegistry;
} // namespace uatm::obs

namespace uatm {

/** Write-buffer configuration. */
struct WriteBufferConfig
{
    /** Number of buffered line/word writes; 0 disables buffering
     *  (writes become synchronous CPU stalls). */
    std::uint32_t depth = 0;

    /** Reads jump ahead of queued write chunks when true;
     *  otherwise a read drains every older write first. */
    bool readBypass = true;
};

/**
 * Arbitration result for a read request.
 */
struct ReadGrant
{
    /** When the transfer actually begins (>= request time). */
    Cycles start = 0;

    /** Cycles the read waited on the write chunk in progress. */
    Cycles busWait = 0;
};

/**
 * Tracks memory occupancy and the pending-write queue.
 */
class MemoryScheduler
{
  public:
    MemoryScheduler(const MemoryTiming &timing,
                    const WriteBufferConfig &wbuf);

    /**
     * A read (line fill) of @p line_bytes requested at time @p now.
     * With readBypass the read jumps queued write chunks, waiting
     * only for the chunk already on the bus; otherwise every older
     * write retires first.  Marks the port busy through the end of
     * the read transfer.
     */
    ReadGrant requestRead(Cycles now, std::uint32_t line_bytes);

    /**
     * A write of @p bytes posted at time @p now.  Returns the cycle
     * at which the CPU may continue:
     *  - no buffer: after the full transfer (synchronous);
     *  - buffered: @p now, unless the buffer is full, in which case
     *    the CPU waits for a slot to free.
     */
    Cycles postWrite(Cycles now, std::uint32_t bytes);

    /** Retire queued write chunks that can start strictly before
     *  @p now. */
    void drainTo(Cycles now);

    /** Force every posted write out; returns the completion time. */
    Cycles drainAllAfter(Cycles now);

    /** Writes (entries, not chunks) still queued. */
    std::size_t pendingWrites() const;

    /** Completion time of the transfer currently using the port. */
    Cycles busyUntil() const { return busyUntil_; }

    /** Total cycles reads spent waiting on the write port. */
    Cycles readWaitCycles() const { return readWaitCycles_; }

    /** Times the CPU stalled because the buffer was full. */
    std::uint64_t bufferFullEvents() const { return fullEvents_; }

    /** Buffered write chunks retired onto the bus so far. */
    std::uint64_t drainedChunks() const { return drainedChunks_; }

    /**
     * Register the scheduler counters (and the write-buffer
     * configuration) under @p prefix, e.g. "wbuf".
     */
    void registerStats(obs::StatRegistry &registry,
                       const std::string &prefix) const;

    /** Reset to idle. */
    void reset();

  private:
    struct PendingWrite
    {
        Cycles postedAt;
        std::uint32_t chunksLeft;
    };

    const MemoryTiming &timing_;
    WriteBufferConfig wbuf_;
    Cycles busyUntil_ = 0;
    std::deque<PendingWrite> queue_;
    Cycles readWaitCycles_ = 0;
    std::uint64_t fullEvents_ = 0;
    std::uint64_t drainedChunks_ = 0;

    Cycles transferTime(std::uint32_t bytes) const;
    std::uint32_t chunksFor(std::uint32_t bytes) const;
};

} // namespace uatm

#endif // UATM_MEMORY_WRITE_BUFFER_HH
