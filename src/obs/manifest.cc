/**
 * @file
 * Implementation of the run-manifest document.
 */

#include "obs/manifest.hh"

#include <fstream>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "util/logging.hh"

#ifndef UATM_GIT_DESCRIBE
#define UATM_GIT_DESCRIBE "unknown"
#endif

namespace uatm::obs {

Manifest::Manifest()
{
    set("run", "schema_version",
        static_cast<std::uint64_t>(kManifestSchemaVersion));
    set("run", "generator", "uatm");
    set("run", "git_describe", gitDescribe());
}

void
Manifest::setTool(const std::string &tool)
{
    set("run", "tool", tool);
}

Manifest::Field &
Manifest::field(const std::string &section, const std::string &key)
{
    for (auto &sec : sections_) {
        if (sec.name != section)
            continue;
        for (auto &f : sec.fields) {
            if (f.key == key)
                return f;
        }
        sec.fields.emplace_back().key = key;
        return sec.fields.back();
    }
    auto &sec = sections_.emplace_back();
    sec.name = section;
    sec.fields.emplace_back().key = key;
    return sec.fields.back();
}

const Manifest::Field *
Manifest::findField(const std::string &section,
                    const std::string &key) const
{
    for (const auto &sec : sections_) {
        if (sec.name != section)
            continue;
        for (const auto &f : sec.fields) {
            if (f.key == key)
                return &f;
        }
    }
    return nullptr;
}

void
Manifest::set(const std::string &section, const std::string &key,
              const std::string &value)
{
    Field &f = field(section, key);
    f.kind = FieldKind::String;
    f.str = value;
}

void
Manifest::set(const std::string &section, const std::string &key,
              const char *value)
{
    set(section, key, std::string(value));
}

void
Manifest::set(const std::string &section, const std::string &key,
              double value)
{
    Field &f = field(section, key);
    f.kind = FieldKind::Number;
    f.num = value;
}

void
Manifest::set(const std::string &section, const std::string &key,
              std::uint64_t value)
{
    set(section, key, static_cast<double>(value));
}

void
Manifest::set(const std::string &section, const std::string &key,
              bool value)
{
    Field &f = field(section, key);
    f.kind = FieldKind::Bool;
    f.flag = value;
}

void
Manifest::setStats(const StatRegistry &registry)
{
    statsJson_ = registry.toJson();
}

std::string
Manifest::lookup(const std::string &section,
                 const std::string &key) const
{
    const Field *f = findField(section, key);
    if (!f)
        return "";
    switch (f->kind) {
      case FieldKind::String:
        return f->str;
      case FieldKind::Number:
        return JsonWriter::formatNumber(f->num);
      case FieldKind::Bool:
        return f->flag ? "true" : "false";
    }
    panic("unknown FieldKind");
}

std::size_t
Manifest::size() const
{
    std::size_t n = 0;
    for (const auto &sec : sections_)
        n += sec.fields.size();
    return n;
}

std::string
Manifest::toJson() const
{
    JsonWriter w;
    w.beginObject();
    for (const auto &sec : sections_) {
        w.key(sec.name).beginObject();
        for (const auto &f : sec.fields) {
            switch (f.kind) {
              case FieldKind::String:
                w.keyValue(f.key, f.str);
                break;
              case FieldKind::Number:
                w.keyValue(f.key, f.num);
                break;
              case FieldKind::Bool:
                w.keyValue(f.key, f.flag);
                break;
            }
        }
        w.endObject();
    }
    if (!statsJson_.empty())
        w.key("stats").rawValue(statsJson_);
    w.endObject();
    return w.str();
}

void
Manifest::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write run manifest '", path, "'");
    out << toJson();
    out.close();
    if (!out)
        fatal("failed while writing run manifest '", path, "'");
}

const char *
Manifest::gitDescribe()
{
    return UATM_GIT_DESCRIBE;
}

} // namespace uatm::obs
