/**
 * @file
 * Implementation of the minimal JSON writer and reader.
 */

#include "obs/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace uatm::obs {

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back('o');
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'o',
                "endObject() outside an object");
    UATM_ASSERT(!pendingKey_, "dangling key at endObject()");
    out_ += '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back('a');
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'a',
                "endArray() outside an array");
    out_ += ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'o',
                "key() is only valid inside an object");
    UATM_ASSERT(!pendingKey_, "two keys in a row");
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    out_ += escape(k);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out_ += escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    out_ += json;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    UATM_ASSERT(stack_.empty(),
                "unbalanced JSON document (missing end calls)");
    return out_;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Exact integers render without a decimal point so counters
    // round-trip textually ("fills": 7, not 7.0).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        UATM_ASSERT(out_.empty(),
                    "only one top-level JSON value is allowed");
        return;
    }
    if (stack_.back() == 'o') {
        UATM_ASSERT(pendingKey_,
                    "value inside an object needs a key() first");
        pendingKey_ = false;
        return;
    }
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
}

bool
JsonValue::asBool() const
{
    UATM_ASSERT(isBool(), "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    UATM_ASSERT(isNumber(), "JSON value is not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    UATM_ASSERT(isString(), "JSON value is not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    UATM_ASSERT(isArray(), "JSON value is not an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    UATM_ASSERT(isObject(), "JSON value is not an object");
    return members_;
}

std::size_t
JsonValue::size() const
{
    if (isArray())
        return items_.size();
    if (isObject())
        return members_.size();
    return 0;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    UATM_ASSERT(value, "missing JSON member: ", key);
    return *value;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    const auto &all = items();
    UATM_ASSERT(index < all.size(), "JSON array index ", index,
                " out of range (", all.size(), ")");
    return all[index];
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *value = find(key);
    return value && value->isNumber() ? value->asNumber()
                                      : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *value = find(key);
    return value && value->isString() ? value->asString()
                                      : fallback;
}

/**
 * Recursive-descent reader.  Errors unwind via the fail()/ok_
 * flag (no exceptions), reporting the first failure's offset.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonParseResult
    run()
    {
        JsonParseResult result;
        skipWs();
        parseValue(result.value, 0);
        skipWs();
        if (ok_ && pos_ != text_.size())
            fail("trailing characters after the document");
        result.ok = ok_;
        if (!ok_) {
            result.value = JsonValue{};
            result.error = "byte " + std::to_string(errorPos_) +
                           ": " + errorMsg_;
        }
        return result;
    }

  private:
    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::size_t errorPos_ = 0;
    std::string errorMsg_;

    void
    fail(const std::string &message)
    {
        if (!ok_)
            return;
        ok_ = false;
        errorPos_ = pos_;
        errorMsg_ = message;
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!eof()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expected)
    {
        if (eof() || peek() != expected)
            return false;
        ++pos_;
        return true;
    }

    void
    expect(char expected, const char *what)
    {
        if (!consume(expected))
            fail(std::string("expected ") + what);
    }

    void
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting deeper than 256 levels");
            return;
        }
        if (eof()) {
            fail("unexpected end of input");
            return;
        }
        switch (peek()) {
          case '{':
            parseObject(out, depth);
            return;
          case '[':
            parseArray(out, depth);
            return;
          case '"':
            out.kind_ = JsonValue::Kind::String;
            parseString(out.string_);
            return;
          case 't':
            parseLiteral("true");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return;
          case 'f':
            parseLiteral("false");
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return;
          case 'n':
            parseLiteral("null");
            out.kind_ = JsonValue::Kind::Null;
            return;
          default:
            parseNumber(out);
            return;
        }
    }

    void
    parseLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal) {
            fail("invalid literal");
            return;
        }
        pos_ += literal.size();
    }

    void
    parseObject(JsonValue &out, int depth)
    {
        ++pos_;  // '{'
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return;
        while (ok_) {
            skipWs();
            if (eof() || peek() != '"') {
                fail("expected a string key");
                return;
            }
            std::string key;
            parseString(key);
            skipWs();
            expect(':', "':' after object key");
            skipWs();
            JsonValue value;
            parseValue(value, depth + 1);
            if (!ok_)
                return;
            out.members_.emplace_back(std::move(key),
                                      std::move(value));
            skipWs();
            if (consume('}'))
                return;
            expect(',', "',' or '}' in object");
        }
    }

    void
    parseArray(JsonValue &out, int depth)
    {
        ++pos_;  // '['
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return;
        while (ok_) {
            skipWs();
            JsonValue value;
            parseValue(value, depth + 1);
            if (!ok_)
                return;
            out.items_.push_back(std::move(value));
            skipWs();
            if (consume(']'))
                return;
            expect(',', "',' or ']' in array");
        }
    }

    void
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (!eof() &&
               ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                peek() == 'e' || peek() == 'E' || peek() == '+' ||
                peek() == '-')) {
            ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (token.empty() || token == "-") {
            pos_ = start;
            fail("invalid value");
            return;
        }
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos_ = start;
            fail("malformed number");
            return;
        }
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = parsed;
    }

    void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseHex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            std::uint32_t digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F')
                digit = 10 + (c - 'A');
            else {
                fail("invalid \\u escape digit");
                return false;
            }
            out = out * 16 + digit;
        }
        pos_ += 4;
        return true;
    }

    void
    parseString(std::string &out)
    {
        ++pos_;  // '"'
        out.clear();
        while (true) {
            if (eof()) {
                fail("unterminated string");
                return;
            }
            const char c = text_[pos_++];
            if (c == '"')
                return;
            if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("raw control character in string");
                return;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof()) {
                fail("truncated escape");
                return;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp;
                if (!parseHex4(cp))
                    return;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: requires \uXXXX low half.
                    if (!consume('\\') || !consume('u')) {
                        fail("unpaired high surrogate");
                        return;
                    }
                    std::uint32_t low;
                    if (!parseHex4(low))
                        return;
                    if (low < 0xDC00 || low > 0xDFFF) {
                        fail("invalid low surrogate");
                        return;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("unpaired low surrogate");
                    return;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                pos_ -= 1;
                fail("unknown escape character");
                return;
            }
        }
    }
};

JsonParseResult
parseJson(std::string_view text)
{
    return JsonParser(text).run();
}

} // namespace uatm::obs
