/**
 * @file
 * Implementation of the minimal JSON writer.
 */

#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace uatm::obs {

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back('o');
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'o',
                "endObject() outside an object");
    UATM_ASSERT(!pendingKey_, "dangling key at endObject()");
    out_ += '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back('a');
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'a',
                "endArray() outside an array");
    out_ += ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    UATM_ASSERT(!stack_.empty() && stack_.back() == 'o',
                "key() is only valid inside an object");
    UATM_ASSERT(!pendingKey_, "two keys in a row");
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    out_ += escape(k);
    out_ += ':';
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out_ += escape(v);
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::rawValue(std::string_view json)
{
    beforeValue();
    out_ += json;
    return *this;
}

const std::string &
JsonWriter::str() const
{
    UATM_ASSERT(stack_.empty(),
                "unbalanced JSON document (missing end calls)");
    return out_;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
JsonWriter::formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Exact integers render without a decimal point so counters
    // round-trip textually ("fills": 7, not 7.0).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        UATM_ASSERT(out_.empty(),
                    "only one top-level JSON value is allowed");
        return;
    }
    if (stack_.back() == 'o') {
        UATM_ASSERT(pendingKey_,
                    "value inside an object needs a key() first");
        pendingKey_ = false;
        return;
    }
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
}

} // namespace uatm::obs
