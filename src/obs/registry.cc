/**
 * @file
 * Implementation of the hierarchical stat registry.
 */

#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.hh"
#include "util/logging.hh"

namespace uatm::obs {

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Formula:
        return "formula";
      case StatKind::Distribution:
        return "distribution";
    }
    panic("unknown StatKind");
}

double
StatEntry::valueNow() const
{
    switch (kind) {
      case StatKind::Scalar:
        return scalar;
      case StatKind::Formula:
        return formula ? formula() : 0.0;
      case StatKind::Distribution:
        return distribution.mean();
    }
    panic("unknown StatKind");
}

StatEntry &
StatRegistry::emplace(const std::string &name,
                      const std::string &description,
                      const std::string &unit, StatKind kind)
{
    UATM_ASSERT(!name.empty(), "stat name must not be empty");
    UATM_ASSERT(!index_.contains(name),
                "duplicate stat registration: ", name);
    index_.emplace(name, entries_.size());
    StatEntry &entry = entries_.emplace_back();
    entry.name = name;
    entry.description = description;
    entry.unit = unit;
    entry.kind = kind;
    return entry;
}

void
StatRegistry::addScalar(const std::string &name, double value,
                        const std::string &description,
                        const std::string &unit)
{
    emplace(name, description, unit, StatKind::Scalar).scalar =
        value;
}

void
StatRegistry::addFormula(const std::string &name,
                         std::function<double()> formula,
                         const std::string &description,
                         const std::string &unit)
{
    emplace(name, description, unit, StatKind::Formula).formula =
        std::move(formula);
}

void
StatRegistry::addDistribution(const std::string &name,
                              const RunningStats &distribution,
                              const std::string &description,
                              const std::string &unit)
{
    emplace(name, description, unit,
            StatKind::Distribution).distribution = distribution;
}

bool
StatRegistry::contains(const std::string &name) const
{
    return index_.contains(name);
}

const StatEntry *
StatRegistry::find(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

double
StatRegistry::value(const std::string &name) const
{
    const StatEntry *entry = find(name);
    UATM_ASSERT(entry, "unknown stat: ", name);
    return entry->valueNow();
}

std::vector<const StatEntry *>
StatRegistry::childrenOf(const std::string &prefix) const
{
    std::vector<const StatEntry *> out;
    const std::string dotted = prefix + ".";
    for (const auto &entry : entries_) {
        if (entry.name == prefix ||
            entry.name.starts_with(dotted)) {
            out.push_back(&entry);
        }
    }
    return out;
}

void
StatRegistry::clear()
{
    entries_.clear();
    index_.clear();
}

std::string
StatRegistry::formatText() const
{
    std::size_t width = 0;
    for (const auto &entry : entries_)
        width = std::max(width, entry.name.size());

    std::ostringstream os;
    for (const auto &entry : entries_) {
        os << entry.name
           << std::string(width - entry.name.size(), ' ') << " = ";
        if (entry.kind == StatKind::Distribution) {
            const RunningStats &d = entry.distribution;
            os << d.mean() << " (n=" << d.count()
               << ", sd=" << d.stddev() << ", min=" << d.min()
               << ", max=" << d.max() << ")";
        } else {
            os << JsonWriter::formatNumber(entry.valueNow());
        }
        if (!entry.unit.empty() || !entry.description.empty()) {
            os << "  #";
            if (!entry.unit.empty())
                os << " (" << entry.unit << ")";
            if (!entry.description.empty())
                os << " " << entry.description;
        }
        os << '\n';
    }
    return os.str();
}

std::string
StatRegistry::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema_version", kStatSchemaVersion);
    w.key("stats").beginObject();
    for (const auto &entry : entries_) {
        w.key(entry.name).beginObject();
        w.keyValue("kind", statKindName(entry.kind));
        if (entry.kind == StatKind::Distribution) {
            const RunningStats &d = entry.distribution;
            w.keyValue("count", d.count());
            w.keyValue("mean", d.mean());
            w.keyValue("stddev", d.stddev());
            w.keyValue("min", d.min());
            w.keyValue("max", d.max());
        } else {
            w.keyValue("value", entry.valueNow());
        }
        if (!entry.unit.empty())
            w.keyValue("unit", entry.unit);
        if (!entry.description.empty())
            w.keyValue("desc", entry.description);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

namespace {

/** Map a dotted stat path onto a legal Prometheus metric name. */
std::string
promSanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool legal =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
            c == ':';
        out += legal ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

/** Escape a label value: backslash, double quote, newline. */
std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Escape HELP text: backslash and newline only (no quotes). */
std::string
promEscapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Exposition number rendering (NaN/+Inf/-Inf spelled out). */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return JsonWriter::formatNumber(v);
}

/** "_<unit>" suffix for the metric name; "" for unitless units. */
std::string
promUnitSuffix(const std::string &unit)
{
    if (unit.empty() || unit == "count" || unit == "bool")
        return "";
    return "_" + promSanitize(unit);
}

/** Render {a="x",b="y"} from base labels + extras; "" if none. */
std::string
promLabelBlock(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::vector<std::pair<std::string, std::string>> &extra =
        {})
{
    if (labels.empty() && extra.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto *set : {&labels, &extra}) {
        for (const auto &[name, value] : *set) {
            if (!first)
                out += ',';
            first = false;
            out += promSanitize(name) + "=\"" +
                   promEscapeLabel(value) + "\"";
        }
    }
    out += '}';
    return out;
}

} // namespace

std::string
StatRegistry::dumpPrometheus(
    const std::string &prefix,
    const std::vector<std::pair<std::string, std::string>> &labels)
    const
{
    std::ostringstream os;
    const std::string base = promLabelBlock(labels);
    for (const auto &entry : entries_) {
        const std::string metric = promSanitize(prefix) + "_" +
                                   promSanitize(entry.name) +
                                   promUnitSuffix(entry.unit);
        const bool summary =
            entry.kind == StatKind::Distribution;
        os << "# HELP " << metric << ' '
           << promEscapeHelp(entry.description.empty()
                                 ? entry.name
                                 : entry.description)
           << '\n';
        os << "# TYPE " << metric << ' '
           << (summary ? "summary" : "gauge") << '\n';
        if (!summary) {
            os << metric << base << ' '
               << promNumber(entry.valueNow()) << '\n';
            continue;
        }
        const RunningStats &d = entry.distribution;
        os << metric << promLabelBlock(labels, {{"quantile", "0"}})
           << ' ' << promNumber(d.count() ? d.min() : 0.0) << '\n';
        os << metric << promLabelBlock(labels, {{"quantile", "1"}})
           << ' ' << promNumber(d.count() ? d.max() : 0.0) << '\n';
        os << metric << "_sum" << base << ' '
           << promNumber(d.mean() *
                         static_cast<double>(d.count()))
           << '\n';
        os << metric << "_count" << base << ' '
           << promNumber(static_cast<double>(d.count())) << '\n';
    }
    return os.str();
}

StatGroup
StatGroup::group(const std::string &name) const
{
    return StatGroup(registry_, qualify(name));
}

std::string
StatGroup::qualify(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

} // namespace uatm::obs
