/**
 * @file
 * Implementation of the hierarchical stat registry.
 */

#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "obs/json.hh"
#include "util/logging.hh"

namespace uatm::obs {

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Formula:
        return "formula";
      case StatKind::Distribution:
        return "distribution";
      case StatKind::Histogram:
        return "histogram";
    }
    panic("unknown StatKind");
}

// ------------------------------------------------ LatencyHistogram

namespace {

/** CAS-loop add for pre-C++20-style atomic<double> accumulation. */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double expected = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(
        expected, expected + delta, std::memory_order_relaxed))
        ;
}

void
atomicMin(std::atomic<double> &target, double x)
{
    double expected = target.load(std::memory_order_relaxed);
    while (x < expected &&
           !target.compare_exchange_weak(
               expected, x, std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> &target, double x)
{
    double expected = target.load(std::memory_order_relaxed);
    while (x > expected &&
           !target.compare_exchange_weak(
               expected, x, std::memory_order_relaxed))
        ;
}

} // namespace

LatencyHistogram::LatencyHistogram(double first_upper,
                                   double growth,
                                   std::size_t buckets)
    : first_(first_upper), growth_(growth),
      counts_(std::max<std::size_t>(buckets, 2))
{
    UATM_ASSERT(first_upper > 0.0,
                "histogram needs a positive first bucket edge");
    UATM_ASSERT(growth > 1.0,
                "histogram growth factor must exceed 1");
}

LatencyHistogram::LatencyHistogram(const LatencyHistogram &other)
{
    copyFrom(other);
}

LatencyHistogram &
LatencyHistogram::operator=(const LatencyHistogram &other)
{
    if (this != &other)
        copyFrom(other);
    return *this;
}

LatencyHistogram::LatencyHistogram(
    LatencyHistogram &&other) noexcept
{
    copyFrom(other);
}

LatencyHistogram &
LatencyHistogram::operator=(LatencyHistogram &&other) noexcept
{
    if (this != &other)
        copyFrom(other);
    return *this;
}

void
LatencyHistogram::copyFrom(const LatencyHistogram &other)
{
    first_ = other.first_;
    growth_ = other.growth_;
    std::vector<std::atomic<std::uint64_t>> counts(
        other.counts_.size());
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i].store(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    counts_ = std::move(counts);
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    min_.store(other.min_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    max_.store(other.max_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

std::size_t
LatencyHistogram::bucketIndex(double x) const
{
    if (!(x > first_))
        return 0;
    // log-derived guess, then fix up the float rounding so edge
    // values land in their inclusive-upper bucket exactly.
    std::size_t i = static_cast<std::size_t>(std::max(
        1.0, 1.0 + std::floor(std::log(x / first_) /
                              std::log(growth_))));
    i = std::min(i, counts_.size() - 1);
    while (i > 0 && x <= upperEdge(i - 1))
        --i;
    while (i + 1 < counts_.size() && x > upperEdge(i))
        ++i;
    return i;
}

void
LatencyHistogram::add(double x)
{
    if (std::isnan(x))
        return;
    x = std::max(x, 0.0);
    counts_[bucketIndex(x)].fetch_add(1,
                                      std::memory_order_relaxed);
    // First-sample races on min/max resolve via the CAS loops: a
    // competing thread either sees count_ == 0 and stores, or
    // folds in over the other thread's value.
    if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
        double expected = 0.0;
        min_.compare_exchange_strong(expected, x,
                                     std::memory_order_relaxed);
        expected = 0.0;
        max_.compare_exchange_strong(expected, x,
                                     std::memory_order_relaxed);
    }
    atomicMin(min_, x);
    atomicMax(max_, x);
    atomicAdd(sum_, x);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    UATM_ASSERT(sameShape(other),
                "cannot merge histograms with different bucket "
                "shapes");
    if (other.count() == 0)
        return;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t n =
            other.counts_[i].load(std::memory_order_relaxed);
        if (n)
            counts_[i].fetch_add(n, std::memory_order_relaxed);
    }
    if (count_.fetch_add(other.count(),
                         std::memory_order_relaxed) == 0) {
        double expected = 0.0;
        min_.compare_exchange_strong(expected, other.min(),
                                     std::memory_order_relaxed);
        expected = 0.0;
        max_.compare_exchange_strong(expected, other.max(),
                                     std::memory_order_relaxed);
    }
    atomicMin(min_, other.min());
    atomicMax(max_, other.max());
    atomicAdd(sum_, other.sum());
}

void
LatencyHistogram::reset()
{
    for (auto &bucket : counts_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::min() const
{
    return count() ? min_.load(std::memory_order_relaxed) : 0.0;
}

double
LatencyHistogram::max() const
{
    return count() ? max_.load(std::memory_order_relaxed) : 0.0;
}

double
LatencyHistogram::mean() const
{
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
}

double
LatencyHistogram::upperEdge(std::size_t i) const
{
    UATM_ASSERT(i < counts_.size(), "histogram bucket ", i,
                " out of range");
    if (i + 1 == counts_.size())
        return std::numeric_limits<double>::infinity();
    return first_ * std::pow(growth_, static_cast<double>(i));
}

std::uint64_t
LatencyHistogram::bucketCount(std::size_t i) const
{
    UATM_ASSERT(i < counts_.size(), "histogram bucket ", i,
                " out of range");
    return counts_[i].load(std::memory_order_relaxed);
}

double
LatencyHistogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max();

    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t here = bucketCount(i);
        if (here == 0)
            continue;
        if (static_cast<double>(cumulative + here) >= rank) {
            const double lo = i == 0 ? 0.0 : upperEdge(i - 1);
            // The +Inf overflow bucket interpolates toward the
            // observed max instead of infinity.
            const double hi = i + 1 == counts_.size()
                                  ? max()
                                  : upperEdge(i);
            const double within =
                (rank - static_cast<double>(cumulative)) /
                static_cast<double>(here);
            const double x = lo + within * (std::max(hi, lo) - lo);
            return std::min(std::max(x, min()), max());
        }
        cumulative += here;
    }
    return max();
}

bool
LatencyHistogram::sameShape(const LatencyHistogram &other) const
{
    return first_ == other.first_ && growth_ == other.growth_ &&
           counts_.size() == other.counts_.size();
}

double
StatEntry::valueNow() const
{
    switch (kind) {
      case StatKind::Scalar:
        return scalar;
      case StatKind::Formula:
        return formula ? formula() : 0.0;
      case StatKind::Distribution:
        return distribution.mean();
      case StatKind::Histogram:
        return histogram.mean();
    }
    panic("unknown StatKind");
}

StatEntry &
StatRegistry::emplace(const std::string &name,
                      const std::string &description,
                      const std::string &unit, StatKind kind)
{
    UATM_ASSERT(!name.empty(), "stat name must not be empty");
    UATM_ASSERT(!index_.contains(name),
                "duplicate stat registration: ", name);
    index_.emplace(name, entries_.size());
    StatEntry &entry = entries_.emplace_back();
    entry.name = name;
    entry.description = description;
    entry.unit = unit;
    entry.kind = kind;
    return entry;
}

void
StatRegistry::addScalar(const std::string &name, double value,
                        const std::string &description,
                        const std::string &unit)
{
    emplace(name, description, unit, StatKind::Scalar).scalar =
        value;
}

void
StatRegistry::addFormula(const std::string &name,
                         std::function<double()> formula,
                         const std::string &description,
                         const std::string &unit)
{
    emplace(name, description, unit, StatKind::Formula).formula =
        std::move(formula);
}

void
StatRegistry::addDistribution(const std::string &name,
                              const RunningStats &distribution,
                              const std::string &description,
                              const std::string &unit)
{
    emplace(name, description, unit,
            StatKind::Distribution).distribution = distribution;
}

LatencyHistogram &
StatRegistry::addLatencyHistogram(const std::string &name,
                                  const LatencyHistogram &histogram,
                                  const std::string &description,
                                  const std::string &unit)
{
    StatEntry &entry =
        emplace(name, description, unit, StatKind::Histogram);
    entry.histogram = histogram;
    return entry.histogram;
}

bool
StatRegistry::contains(const std::string &name) const
{
    return index_.contains(name);
}

const StatEntry *
StatRegistry::find(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

StatEntry *
StatRegistry::findMutable(const std::string &name)
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &entries_[it->second];
}

double
StatRegistry::value(const std::string &name) const
{
    const StatEntry *entry = find(name);
    UATM_ASSERT(entry, "unknown stat: ", name);
    return entry->valueNow();
}

std::vector<const StatEntry *>
StatRegistry::childrenOf(const std::string &prefix) const
{
    std::vector<const StatEntry *> out;
    const std::string dotted = prefix + ".";
    for (const auto &entry : entries_) {
        if (entry.name == prefix ||
            entry.name.starts_with(dotted)) {
            out.push_back(&entry);
        }
    }
    return out;
}

void
StatRegistry::clear()
{
    entries_.clear();
    index_.clear();
}

std::string
StatRegistry::formatText() const
{
    std::size_t width = 0;
    for (const auto &entry : entries_)
        width = std::max(width, entry.name.size());

    std::ostringstream os;
    for (const auto &entry : entries_) {
        os << entry.name
           << std::string(width - entry.name.size(), ' ') << " = ";
        if (entry.kind == StatKind::Distribution) {
            const RunningStats &d = entry.distribution;
            os << d.mean() << " (n=" << d.count()
               << ", sd=" << d.stddev() << ", min=" << d.min()
               << ", max=" << d.max() << ")";
        } else if (entry.kind == StatKind::Histogram) {
            const LatencyHistogram &h = entry.histogram;
            os << h.mean() << " (n=" << h.count()
               << ", p50=" << h.p50() << ", p95=" << h.p95()
               << ", p99=" << h.p99() << ", max=" << h.max()
               << ")";
        } else {
            os << JsonWriter::formatNumber(entry.valueNow());
        }
        if (!entry.unit.empty() || !entry.description.empty()) {
            os << "  #";
            if (!entry.unit.empty())
                os << " (" << entry.unit << ")";
            if (!entry.description.empty())
                os << " " << entry.description;
        }
        os << '\n';
    }
    return os.str();
}

std::string
StatRegistry::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema_version", kStatSchemaVersion);
    w.key("stats").beginObject();
    for (const auto &entry : entries_) {
        w.key(entry.name).beginObject();
        w.keyValue("kind", statKindName(entry.kind));
        if (entry.kind == StatKind::Distribution) {
            const RunningStats &d = entry.distribution;
            w.keyValue("count", d.count());
            w.keyValue("mean", d.mean());
            w.keyValue("stddev", d.stddev());
            w.keyValue("min", d.min());
            w.keyValue("max", d.max());
        } else if (entry.kind == StatKind::Histogram) {
            const LatencyHistogram &h = entry.histogram;
            w.keyValue("count", h.count());
            w.keyValue("sum", h.sum());
            w.keyValue("mean", h.mean());
            w.keyValue("min", h.min());
            w.keyValue("max", h.max());
            w.keyValue("p50", h.p50());
            w.keyValue("p95", h.p95());
            w.keyValue("p99", h.p99());
            // Only occupied buckets: 64 mostly-empty rows per
            // histogram would drown the dump.
            w.key("buckets").beginArray();
            for (std::size_t i = 0; i < h.buckets(); ++i) {
                if (h.bucketCount(i) == 0)
                    continue;
                w.beginObject();
                w.key("le");
                if (std::isinf(h.upperEdge(i)))
                    w.value("+Inf");
                else
                    w.value(h.upperEdge(i));
                w.keyValue("count", h.bucketCount(i));
                w.endObject();
            }
            w.endArray();
        } else {
            w.keyValue("value", entry.valueNow());
        }
        if (!entry.unit.empty())
            w.keyValue("unit", entry.unit);
        if (!entry.description.empty())
            w.keyValue("desc", entry.description);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

namespace {

/** Map a dotted stat path onto a legal Prometheus metric name. */
std::string
promSanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool legal =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9' && !out.empty()) || c == '_' ||
            c == ':';
        out += legal ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

/** Label names are stricter than metric names: no ':'. */
std::string
promSanitizeLabelName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool legal =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9' && !out.empty()) || c == '_';
        out += legal ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

/** Escape a label value: backslash, double quote, newline. */
std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Escape HELP text: backslash and newline only (no quotes). */
std::string
promEscapeHelp(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/** Exposition number rendering (NaN/+Inf/-Inf spelled out). */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return JsonWriter::formatNumber(v);
}

/** "_<unit>" suffix for the metric name; "" for unitless units. */
std::string
promUnitSuffix(const std::string &unit)
{
    if (unit.empty() || unit == "count" || unit == "bool")
        return "";
    return "_" + promSanitize(unit);
}

/** Render {a="x",b="y"} from base labels + extras; "" if none. */
std::string
promLabelBlock(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::vector<std::pair<std::string, std::string>> &extra =
        {})
{
    if (labels.empty() && extra.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto *set : {&labels, &extra}) {
        for (const auto &[name, value] : *set) {
            if (!first)
                out += ',';
            first = false;
            out += promSanitizeLabelName(name) + "=\"" +
                   promEscapeLabel(value) + "\"";
        }
    }
    out += '}';
    return out;
}

} // namespace

std::string
StatRegistry::dumpPrometheus(
    const std::string &prefix,
    const std::vector<std::pair<std::string, std::string>> &labels)
    const
{
    std::ostringstream os;
    const std::string base = promLabelBlock(labels);

    // Sanitization can collide ("a.b" and "a-b" both map to
    // "a_b"), and a gauge literally named "x_bucket" would collide
    // with histogram x's derived series.  A repeated metric name
    // means duplicate HELP/TYPE blocks, which scrapers reject, so
    // every name an entry occupies — itself plus any derived
    // _bucket/_sum/_count series — is claimed in this set, and
    // later colliders get a deterministic "_2"/"_3" suffix.
    std::unordered_set<std::string> used;
    const auto derivedNames =
        [](const std::string &metric,
           StatKind kind) -> std::vector<std::string> {
        switch (kind) {
          case StatKind::Distribution:
          case StatKind::Histogram:
            return {metric, metric + "_bucket", metric + "_sum",
                    metric + "_count"};
          default:
            return {metric};
        }
    };

    for (const auto &entry : entries_) {
        std::string metric = promSanitize(prefix) + "_" +
                             promSanitize(entry.name) +
                             promUnitSuffix(entry.unit);
        for (int suffix = 2;; ++suffix) {
            const auto names = derivedNames(metric, entry.kind);
            const bool clash = std::any_of(
                names.begin(), names.end(),
                [&used](const std::string &name) {
                    return used.contains(name);
                });
            if (!clash) {
                used.insert(names.begin(), names.end());
                break;
            }
            metric = promSanitize(prefix) + "_" +
                     promSanitize(entry.name) +
                     promUnitSuffix(entry.unit) + "_" +
                     std::to_string(suffix);
        }

        const bool summary =
            entry.kind == StatKind::Distribution;
        const bool histogram =
            entry.kind == StatKind::Histogram;
        os << "# HELP " << metric << ' '
           << promEscapeHelp(entry.description.empty()
                                 ? entry.name
                                 : entry.description)
           << '\n';
        os << "# TYPE " << metric << ' '
           << (histogram ? "histogram"
               : summary ? "summary"
                         : "gauge")
           << '\n';
        if (histogram) {
            // Conformant exposition: cumulative _bucket series
            // over the occupied edges, always closed by le="+Inf"
            // (== _count), then _sum and _count.  The buckets are
            // snapshotted once so a scrape concurrent with add()
            // stays internally consistent: reading a live bucket
            // twice (or _count separately) could yield a
            // non-monotone cumulative series or a +Inf bucket
            // below _count.
            const LatencyHistogram &h = entry.histogram;
            std::vector<std::uint64_t> counts(h.buckets());
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < counts.size(); ++i) {
                counts[i] = h.bucketCount(i);
                total += counts[i];
            }
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i + 1 < counts.size(); ++i) {
                if (counts[i] == 0)
                    continue;
                cumulative += counts[i];
                os << metric << "_bucket"
                   << promLabelBlock(
                          labels,
                          {{"le", promNumber(h.upperEdge(i))}})
                   << ' ' << promNumber(static_cast<double>(
                              cumulative))
                   << '\n';
            }
            os << metric << "_bucket"
               << promLabelBlock(labels, {{"le", "+Inf"}}) << ' '
               << promNumber(static_cast<double>(total))
               << '\n';
            os << metric << "_sum" << base << ' '
               << promNumber(h.sum()) << '\n';
            os << metric << "_count" << base << ' '
               << promNumber(static_cast<double>(total))
               << '\n';
            continue;
        }
        if (!summary) {
            os << metric << base << ' '
               << promNumber(entry.valueNow()) << '\n';
            continue;
        }
        const RunningStats &d = entry.distribution;
        os << metric << promLabelBlock(labels, {{"quantile", "0"}})
           << ' ' << promNumber(d.count() ? d.min() : 0.0) << '\n';
        os << metric << promLabelBlock(labels, {{"quantile", "1"}})
           << ' ' << promNumber(d.count() ? d.max() : 0.0) << '\n';
        os << metric << "_sum" << base << ' '
           << promNumber(d.mean() *
                         static_cast<double>(d.count()))
           << '\n';
        os << metric << "_count" << base << ' '
           << promNumber(static_cast<double>(d.count())) << '\n';
    }
    return os.str();
}

StatGroup
StatGroup::group(const std::string &name) const
{
    return StatGroup(registry_, qualify(name));
}

std::string
StatGroup::qualify(const std::string &name) const
{
    return prefix_.empty() ? name : prefix_ + "." + name;
}

} // namespace uatm::obs
