/**
 * @file
 * Per-event stall-interval tracer.
 *
 * The timing engine records every interesting interval — fill
 * transfers, in-flight access stalls, miss serialization, flushes,
 * write and buffer-full stalls, port contention, prefetch issues —
 * into a fixed-capacity ring buffer of POD events.  The buffer can
 * be exported as Chrome trace_event JSON, so any run is loadable in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing; one
 * simulated CPU cycle is displayed as one microsecond.
 *
 * Cost model: when disabled, record() is an inline early-out on a
 * single bool — cheap enough to leave call sites unconditional in
 * the engine's hot loop.  When enabled, recording is a handful of
 * stores into preallocated storage (wraparound overwrites the
 * oldest events; the drop count is reported in the export).
 *
 * The process-wide tracer in globalTracer() arms itself from the
 * environment: set UATM_TRACE=<path> and every binary that drives
 * a TimingEngine writes a Chrome trace to <path> at exit.
 * UATM_TRACE_EVENTS overrides the default ring capacity.
 */

#ifndef UATM_OBS_TRACE_EVENT_HH
#define UATM_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace uatm::obs {

class StatRegistry;

/** Bumped whenever the exported trace layout changes shape. */
constexpr int kTraceSchemaVersion = 1;

/**
 * One traced interval or counter sample.  Name/category must be
 * string literals (the tracer stores the pointers, not copies).
 */
struct TraceEvent
{
    const char *name = nullptr;
    const char *category = nullptr;
    std::uint64_t start = 0;     ///< begin, in CPU cycles
    std::uint64_t duration = 0;  ///< length; 0 = instant event
    std::uint64_t arg = 0;       ///< line address, or the counter value
    /** Counter sample ("ph":"C"): arg is the series value at
     *  start, rendered as a counter track in the viewer. */
    bool counter = false;
};

class EventTracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit EventTracer(std::size_t capacity = kDefaultCapacity);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Resize the ring; discards any buffered events. */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return ring_.size(); }

    /** Record one interval; inline no-op while disabled. */
    void
    record(const char *name, const char *category,
           std::uint64_t start, std::uint64_t duration,
           std::uint64_t arg = 0)
    {
        if (!enabled_)
            return;
        TraceEvent &slot = ring_[head_];
        slot.name = name;
        slot.category = category;
        slot.start = start;
        slot.duration = duration;
        slot.arg = arg;
        slot.counter = false;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
    }

    /**
     * Record one counter sample: the cumulative @p value of the
     * series @p name at time @p ts.  Exported as a "ph":"C" event,
     * which Perfetto/chrome://tracing render as a counter track
     * alongside the interval tracks.  Inline no-op while disabled.
     */
    void
    recordCounter(const char *name, std::uint64_t ts,
                  std::uint64_t value,
                  const char *category = "counter")
    {
        if (!enabled_)
            return;
        TraceEvent &slot = ring_[head_];
        slot.name = name;
        slot.category = category;
        slot.start = ts;
        slot.duration = 0;
        slot.arg = value;
        slot.counter = true;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++recorded_;
    }

    /** Events currently buffered (<= capacity). */
    std::size_t size() const;

    /** Events ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const;

    /**
     * Copy @p name into tracer-owned storage and return a pointer
     * that stays valid for the tracer's lifetime, so runtime-built
     * names (per-worker tracks, point labels) can feed record()'s
     * literal-pointer contract.  Repeated calls with the same text
     * return the same pointer.
     */
    const char *intern(const std::string &name);

    /**
     * Register the tracer's health counters — events recorded,
     * events dropped to ring wraparound, and the ring capacity —
     * so a truncated trace is visible in every stat dump, not just
     * the trace file's own metadata.
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix = "tracer") const;

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Drop buffered events and reset the drop counters. */
    void clear();

    /** The full buffer as a Chrome trace_event JSON document. */
    std::string toChromeJson() const;

    /**
     * Write toChromeJson() to @p path; returns false (with a
     * warning) when the file cannot be written.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;        ///< next write position
    std::uint64_t recorded_ = 0;
    bool enabled_ = false;
    /** intern() storage; node-based so pointers stay stable. */
    std::unordered_set<std::string> interned_;
};

/**
 * The process-wide tracer, armed by UATM_TRACE=<path>: enabled on
 * first use and flushed to the path via atexit.
 */
EventTracer &globalTracer();

/**
 * Write the global tracer's buffer to the UATM_TRACE path now
 * (also happens automatically at exit); no-op without UATM_TRACE.
 */
void flushGlobalTrace();

} // namespace uatm::obs

#endif // UATM_OBS_TRACE_EVENT_HH
