/**
 * @file
 * perf_event_open counter groups: opening, grouped reads, and
 * multiplexing-corrected delta scaling.
 */

#include "obs/perf_counters.hh"

#include <cstdlib>
#include <cstring>

#include "obs/json.hh"
#include "util/logging.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace uatm::obs {

namespace {

constexpr const char *kEventNames[kPerfEventCount] = {
    "cycles",
    "instructions",
    "cache_references",
    "cache_misses",
    "llc_misses",
    "branch_misses",
    "context_switches",
    "cpu_migrations",
};

/**
 * Which kernel group each event joins.  The four headline
 * hardware events share group 0 (they fit the 4 programmable
 * counters of common x86/ARM PMUs, so the group schedules as a
 * unit without starving), the two optional hardware events form
 * group 1, and the software events — which always schedule —
 * form group 2.
 */
constexpr std::uint8_t kEventGroup[kPerfEventCount] = {
    0, 0, 0, 0, 1, 1, 2, 2};

} // namespace

const char *
perfEventName(PerfEvent event)
{
    const auto i = static_cast<std::size_t>(event);
    UATM_ASSERT(i < kPerfEventCount, "bad PerfEvent ", i);
    return kEventNames[i];
}

bool
perfEventFromName(std::string_view name, PerfEvent &out)
{
    for (std::size_t i = 0; i < kPerfEventCount; ++i) {
        if (name == kEventNames[i]) {
            out = static_cast<PerfEvent>(i);
            return true;
        }
    }
    return false;
}

double
PerfCounterValues::get(PerfEvent event) const
{
    return has(event)
               ? value[static_cast<std::size_t>(event)]
               : 0.0;
}

double
PerfCounterValues::multiplexScale() const
{
    if (!available || timeRunningNs <= 0.0)
        return 0.0;
    return timeEnabledNs / timeRunningNs;
}

double
PerfCounterValues::ipc() const
{
    if (!has(PerfEvent::Instructions) ||
        !has(PerfEvent::Cycles) || get(PerfEvent::Cycles) <= 0.0)
        return 0.0;
    return get(PerfEvent::Instructions) / get(PerfEvent::Cycles);
}

double
PerfCounterValues::cacheMissRate() const
{
    if (!has(PerfEvent::CacheMisses) ||
        !has(PerfEvent::CacheReferences) ||
        get(PerfEvent::CacheReferences) <= 0.0)
        return 0.0;
    return get(PerfEvent::CacheMisses) /
           get(PerfEvent::CacheReferences);
}

double
PerfCounterValues::missesPerKiloInstruction() const
{
    if (!has(PerfEvent::CacheMisses) ||
        !has(PerfEvent::Instructions) ||
        get(PerfEvent::Instructions) <= 0.0)
        return 0.0;
    return get(PerfEvent::CacheMisses) * 1000.0 /
           get(PerfEvent::Instructions);
}

void
PerfCounterValues::writeJson(JsonWriter &w) const
{
    w.beginObject().keyValue("available", available);
    if (available) {
        w.keyValue("multiplex_scale", multiplexScale())
            .keyValue("time_enabled_ns", timeEnabledNs)
            .keyValue("time_running_ns", timeRunningNs);
        w.key("values").beginObject();
        for (std::size_t i = 0; i < kPerfEventCount; ++i) {
            const auto event = static_cast<PerfEvent>(i);
            if (has(event))
                w.keyValue(kEventNames[i], value[i]);
        }
        w.endObject();
    }
    w.endObject();
}

PerfCounterValues
PerfCounterValues::fromJson(const JsonValue &doc)
{
    PerfCounterValues out;
    if (!doc.isObject())
        return out;
    const JsonValue *available = doc.find("available");
    if (!available || !available->isBool() ||
        !available->asBool())
        return out;
    out.available = true;
    out.timeEnabledNs = doc.numberOr("time_enabled_ns", 0.0);
    out.timeRunningNs = doc.numberOr("time_running_ns", 0.0);
    if (const JsonValue *values = doc.find("values");
        values && values->isObject()) {
        for (const auto &[name, v] : values->members()) {
            PerfEvent event;
            if (!v.isNumber() ||
                !perfEventFromName(name, event))
                continue;
            const auto i = static_cast<std::size_t>(event);
            out.value[i] = v.asNumber();
            out.mask |= 1u << i;
        }
    }
    return out;
}

PerfCounterValues
scaleDelta(const PerfReading &begin, const PerfReading &end)
{
    PerfCounterValues out;
    if (!begin.available || !end.available)
        return out;
    for (std::size_t i = 0; i < kPerfEventCount; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        if (!begin.has(event) || !end.has(event))
            continue;
        const std::uint64_t dr =
            end.raw[i] >= begin.raw[i]
                ? end.raw[i] - begin.raw[i]
                : 0;
        const std::uint64_t de =
            end.enabledNs[i] >= begin.enabledNs[i]
                ? end.enabledNs[i] - begin.enabledNs[i]
                : 0;
        const std::uint64_t drun =
            end.runningNs[i] >= begin.runningNs[i]
                ? end.runningNs[i] - begin.runningNs[i]
                : 0;
        if (drun == 0 && de > 0) {
            // Enabled but never on hardware: the PMU multiplexed
            // this group out for the whole interval, so there is
            // no count to extrapolate from.
            continue;
        }
        const double scale =
            drun > 0 ? static_cast<double>(de) /
                           static_cast<double>(drun)
                     : 1.0;
        out.value[i] = static_cast<double>(dr) * scale;
        out.mask |= 1u << i;
        if (static_cast<double>(de) > out.timeEnabledNs) {
            out.timeEnabledNs = static_cast<double>(de);
            out.timeRunningNs = static_cast<double>(drun);
        }
    }
    out.available = out.mask != 0;
    return out;
}

bool
perfArmed()
{
    const char *env = std::getenv("UATM_PERF");
    return env && *env && std::string_view(env) != "0";
}

#if defined(__linux__)

namespace {

/** (type, config) for each PerfEvent, matching enum order. */
struct EventConfig
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventConfig kEventConfig[kPerfEventCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL |
         (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CPU_MIGRATIONS},
};

int
openEvent(std::size_t event, int group_fd, bool inherit)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEventConfig[event].type;
    attr.config = kEventConfig[event].config;
    // User-space scope: the least privilege perf_event_paranoid
    // accepts without CAP_PERFMON.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // Leaders start disabled so start() enables the whole group
    // from a clean zero; members follow their leader.
    attr.disabled = group_fd == -1 ? 1 : 0;
    attr.inherit = inherit ? 1 : 0;
    if (inherit) {
        // inherit and PERF_FORMAT_GROUP do not combine: fall back
        // to per-event reads, each with its own scaling times.
        attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
    } else {
        attr.read_format = PERF_FORMAT_GROUP |
                           PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING |
                           PERF_FORMAT_ID;
    }
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

} // namespace

PerfCounterGroup::PerfCounterGroup(PerfCounterOptions options)
    : inherit_(options.inheritChildren)
{
    if (options.forceUnavailable) {
        reason_ = "disabled (forceUnavailable)";
        return;
    }
    int firstErrno = 0;
    for (std::size_t i = 0; i < kPerfEventCount; ++i) {
        const std::uint8_t group =
            inherit_ ? static_cast<std::uint8_t>(i)
                     : kEventGroup[i];
        const int leader =
            inherit_ ? -1
                     : leaders_[group];
        const int fd = openEvent(i, leader, inherit_);
        if (fd < 0) {
            if (firstErrno == 0)
                firstErrno = errno;
            continue;
        }
        OpenEvent &open = events_[eventCount_++];
        open.fd = fd;
        open.event = static_cast<std::uint8_t>(i);
        open.group = group;
        if (!inherit_) {
            if (leaders_[group] == -1)
                leaders_[group] = fd;
            std::uint64_t id = 0;
            if (ioctl(fd, PERF_EVENT_IOC_ID, &id) == 0)
                open.id = id;
        }
        mask_ |= 1u << i;
    }
    available_ = eventCount_ != 0;
    if (!available_) {
        reason_ = std::string("perf_event_open failed: ") +
                  std::strerror(firstErrno ? firstErrno : ENOSYS);
    }
}

PerfCounterGroup::~PerfCounterGroup()
{
    for (std::size_t i = 0; i < eventCount_; ++i)
        close(events_[i].fd);
}

void
PerfCounterGroup::start()
{
    if (!available_)
        return;
    if (inherit_) {
        for (std::size_t i = 0; i < eventCount_; ++i) {
            ioctl(events_[i].fd, PERF_EVENT_IOC_RESET, 0);
            ioctl(events_[i].fd, PERF_EVENT_IOC_ENABLE, 0);
        }
        return;
    }
    for (int leader : leaders_) {
        if (leader == -1)
            continue;
        ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
}

void
PerfCounterGroup::stop()
{
    if (!available_)
        return;
    if (inherit_) {
        for (std::size_t i = 0; i < eventCount_; ++i)
            ioctl(events_[i].fd, PERF_EVENT_IOC_DISABLE, 0);
        return;
    }
    for (int leader : leaders_) {
        if (leader != -1)
            ioctl(leader, PERF_EVENT_IOC_DISABLE,
                  PERF_IOC_FLAG_GROUP);
    }
}

PerfReading
PerfCounterGroup::read() const
{
    PerfReading out;
    if (!available_)
        return out;

    if (inherit_) {
        // Per-event layout: {value, time_enabled, time_running}.
        for (std::size_t i = 0; i < eventCount_; ++i) {
            std::uint64_t buf[3] = {0, 0, 0};
            if (::read(events_[i].fd, buf, sizeof(buf)) !=
                static_cast<ssize_t>(sizeof(buf)))
                continue;
            const std::size_t e = events_[i].event;
            out.raw[e] = buf[0];
            out.enabledNs[e] = buf[1];
            out.runningNs[e] = buf[2];
            out.mask |= 1u << e;
        }
        out.available = out.mask != 0;
        return out;
    }

    // Grouped layout: {nr, time_enabled, time_running,
    // {value, id}...} — one atomic snapshot per kernel group.
    for (int leader : leaders_) {
        if (leader == -1)
            continue;
        std::uint64_t buf[3 + 2 * kPerfEventCount] = {};
        const ssize_t got = ::read(leader, buf, sizeof(buf));
        if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
            continue;
        const std::uint64_t nr = buf[0];
        const std::uint64_t enabled = buf[1];
        const std::uint64_t running = buf[2];
        for (std::uint64_t v = 0; v < nr; ++v) {
            const std::uint64_t value = buf[3 + 2 * v];
            const std::uint64_t id = buf[3 + 2 * v + 1];
            for (std::size_t i = 0; i < eventCount_; ++i) {
                if (events_[i].id != id ||
                    leaders_[events_[i].group] != leader)
                    continue;
                const std::size_t e = events_[i].event;
                out.raw[e] = value;
                out.enabledNs[e] = enabled;
                out.runningNs[e] = running;
                out.mask |= 1u << e;
                break;
            }
        }
    }
    out.available = out.mask != 0;
    return out;
}

#else // !defined(__linux__)

PerfCounterGroup::PerfCounterGroup(PerfCounterOptions options)
    : inherit_(options.inheritChildren)
{
    reason_ = options.forceUnavailable
                  ? "disabled (forceUnavailable)"
                  : "perf_event_open requires Linux";
}

PerfCounterGroup::~PerfCounterGroup() = default;

void
PerfCounterGroup::start()
{
}

void
PerfCounterGroup::stop()
{
}

PerfReading
PerfCounterGroup::read() const
{
    return PerfReading{};
}

#endif // defined(__linux__)

PerfCounterGroup &
threadPerfCounters()
{
    thread_local PerfCounterGroup group;
    thread_local const bool started = [] {
        group.start();
        return true;
    }();
    (void)started;
    return group;
}

} // namespace uatm::obs
