/**
 * @file
 * Hardware PMU counters via perf_event_open.
 *
 * A PerfCounterGroup opens a fixed set of hardware and software
 * counters — cycles, instructions, cache references/misses, LLC
 * misses, branch misses, context switches, cpu migrations — for
 * the calling thread and reads them as grouped snapshots
 * (PERF_FORMAT_GROUP), so the values within one kernel group are
 * taken atomically.  scaleDelta() turns two snapshots into
 * multiplexing-corrected deltas using the kernel's
 * time_enabled/time_running accounting: when the PMU rotates more
 * groups than it has hardware counters, each delta is scaled by
 * enabled/running, and a group that never got scheduled reports
 * its events as absent rather than as zero.
 *
 * Availability is always best-effort and never an error: a host
 * without a PMU (VMs, containers), a perf_event_paranoid setting
 * that forbids the open, a seccomp filter that blocks the
 * syscall, or a non-Linux build all degrade to available() ==
 * false (with the reason kept for diagnostics), and every event
 * that fails to open individually — common for the LLC and
 * branch events under virtualisation — is simply dropped from the
 * set while the rest keep counting.  Consumers (profile scopes,
 * runner telemetry lanes, the bench harness) therefore treat
 * counters as an extra observability channel that may or may not
 * be present, never as a required input.
 *
 * Counting is user-space scoped (exclude_kernel/exclude_hv), the
 * least-privileged mode perf_event_paranoid permits without
 * CAP_PERFMON.
 */

#ifndef UATM_OBS_PERF_COUNTERS_HH
#define UATM_OBS_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace uatm::obs {

class JsonWriter;
class JsonValue;

/** The counters one group measures, in fixed order. */
enum class PerfEvent : std::uint8_t
{
    Cycles,
    Instructions,
    CacheReferences,
    CacheMisses,
    LlcMisses,
    BranchMisses,
    ContextSwitches,
    CpuMigrations,
};

constexpr std::size_t kPerfEventCount = 8;

/** Canonical snake_case name ("cycles", "llc_misses", ...). */
const char *perfEventName(PerfEvent event);

/** Parse a canonical name; false when @p name is unknown. */
bool perfEventFromName(std::string_view name, PerfEvent &out);

/**
 * One raw snapshot of a counter group: per-event running totals
 * plus the kernel's time_enabled/time_running accounting for the
 * kernel group each event belongs to.  Raw snapshots only make
 * sense as begin/end pairs fed to scaleDelta().
 */
struct PerfReading
{
    /** False when no event of the group is open. */
    bool available = false;

    /** Bit (1 << event) set when that event was read. */
    std::uint32_t mask = 0;

    std::array<std::uint64_t, kPerfEventCount> raw{};
    std::array<std::uint64_t, kPerfEventCount> enabledNs{};
    std::array<std::uint64_t, kPerfEventCount> runningNs{};

    bool
    has(PerfEvent event) const
    {
        return mask & (1u << static_cast<unsigned>(event));
    }
};

/**
 * Multiplexing-corrected counter deltas over one measured
 * interval, plus the derived rates the diagnosis layers print.
 * The serialized form is the "counters" object of the RUNNER_*,
 * BENCH_* and run_report JSON schemas.
 */
struct PerfCounterValues
{
    /** False when the interval had no readable counters. */
    bool available = false;

    /** Bit (1 << event) set when that event has a usable delta. */
    std::uint32_t mask = 0;

    /** Scaled delta per event; meaningful only when has(). */
    std::array<double, kPerfEventCount> value{};

    /** Largest per-event time_enabled delta over the interval. */
    double timeEnabledNs = 0.0;
    /** time_running delta matching timeEnabledNs's event. */
    double timeRunningNs = 0.0;

    bool
    has(PerfEvent event) const
    {
        return mask & (1u << static_cast<unsigned>(event));
    }

    /** Scaled delta, or 0.0 when the event is absent. */
    double get(PerfEvent event) const;

    /**
     * enabled/running over the interval: 1.0 = the group was on
     * hardware the whole time, larger = the kernel multiplexed
     * it and the values are extrapolated.  0 when unavailable.
     */
    double multiplexScale() const;

    /** instructions / cycles; 0 when either event is absent. */
    double ipc() const;

    /** cache misses / cache references; 0 when absent. */
    double cacheMissRate() const;

    /** cache misses per 1000 instructions; 0 when absent. */
    double missesPerKiloInstruction() const;

    /**
     * Emit as a JSON object value (the caller supplies the key):
     * {"available": bool, "multiplex_scale": f,
     *  "time_enabled_ns": n, "time_running_ns": n,
     *  "values": {"cycles": ..., ...}}   (present events only).
     */
    void writeJson(JsonWriter &w) const;

    /** Parse an object produced by writeJson(); unknown value
     *  names are ignored, a missing/false "available" or a non-
     *  object input yields the unavailable value. */
    static PerfCounterValues fromJson(const JsonValue &doc);
};

/** end - begin with per-event enabled/running scaling.  An event
 *  whose group gained enabled time but no running time (never
 *  scheduled) is dropped from the result's mask. */
PerfCounterValues scaleDelta(const PerfReading &begin,
                             const PerfReading &end);

struct PerfCounterOptions
{
    /**
     * Count threads spawned while the counters exist too, at the
     * cost of ungrouped (per-event, non-atomic) reads — inherit
     * and PERF_FORMAT_GROUP do not combine.  For whole-benchmark
     * measurement; per-thread consumers leave this off.
     */
    bool inheritChildren = false;

    /** Behave as if perf_event_open failed (deterministic
     *  fallback-path testing). */
    bool forceUnavailable = false;
};

/**
 * An open set of perf counters for the calling thread (and, with
 * inheritChildren, its future children).  The hardware events are
 * split across two kernel groups sized to fit common PMUs, the
 * software events form a third; each group schedules atomically
 * and carries its own multiplex accounting.  Construction never
 * fails — a host that forbids perf yields available() == false
 * and every operation becomes a cheap no-op.
 */
class PerfCounterGroup
{
  public:
    explicit PerfCounterGroup(PerfCounterOptions options = {});
    ~PerfCounterGroup();

    PerfCounterGroup(const PerfCounterGroup &) = delete;
    PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

    /** True when at least one event opened. */
    bool available() const { return available_; }

    /** Why nothing opened ("" while available()). */
    const std::string &unavailableReason() const
    {
        return reason_;
    }

    /** Bit (1 << event) per successfully opened event. */
    std::uint32_t mask() const { return mask_; }

    /** Zero every counter and start (or resume) counting. */
    void start();

    /** Pause counting; read() still works. */
    void stop();

    /** Snapshot the current totals (since the last start()). */
    PerfReading read() const;

  private:
    struct OpenEvent
    {
        int fd = -1;
        std::uint64_t id = 0;
        std::uint8_t event = 0;
        std::uint8_t group = 0;
    };

    std::array<OpenEvent, kPerfEventCount> events_{};
    std::array<int, 3> leaders_ = {-1, -1, -1};
    std::size_t eventCount_ = 0;
    std::uint32_t mask_ = 0;
    bool available_ = false;
    bool inherit_ = false;
    std::string reason_;
};

/** UATM_PERF set non-empty and not "0": arms counter collection
 *  on profile scopes (and the profile registry itself). */
bool perfArmed();

/**
 * The calling thread's shared counter group (default options),
 * opened and started on first use.  Scope-style consumers take a
 * read() at entry and exit and feed the pair to scaleDelta();
 * the group stays enabled for the thread's lifetime.
 */
PerfCounterGroup &threadPerfCounters();

} // namespace uatm::obs

#endif // UATM_OBS_PERF_COUNTERS_HH
