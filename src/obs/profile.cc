/**
 * @file
 * Implementation of the scoped wall-clock profiler.
 */

#include "obs/profile.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm::obs {

namespace {

void
dumpProfileAtExit()
{
    const std::string dump = ProfileRegistry::instance().format();
    if (!dump.empty())
        std::fputs(dump.c_str(), stderr);
}

} // namespace

ProfileRegistry::ProfileRegistry()
{
    if (const char *env = std::getenv("UATM_PROFILE");
        env && *env && std::string_view(env) != "0") {
        enabled_ = true;
    }
    // UATM_PERF arms per-scope counters and implies profiling:
    // counters without scopes would have nowhere to go.
    if (perfArmed()) {
        enabled_ = true;
        counters_ = true;
    }
}

ProfileRegistry &
ProfileRegistry::instance()
{
    static ProfileRegistry registry;
    // Arm the exit dump only after construction completes so the
    // handler is sequenced before the registry's destruction.
    static const bool armed = [&] {
        if (registry.enabled())
            std::atexit(dumpProfileAtExit);
        return true;
    }();
    (void)armed;
    return registry;
}

void
ProfileRegistry::record(const char *name, double seconds)
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &[scope, stats] : scopes_) {
        if (scope == name) {
            stats.add(seconds);
            return;
        }
    }
    scopes_.emplace_back(name, RunningStats{});
    scopes_.back().second.add(seconds);
}

void
ProfileRegistry::recordCounters(const char *name,
                                const PerfCounterValues &delta)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ScopeCounters *counters = nullptr;
    for (auto &[scope, sc] : counterScopes_) {
        if (scope == name) {
            counters = &sc;
            break;
        }
    }
    if (!counters) {
        counterScopes_.emplace_back(name, ScopeCounters{});
        counters = &counterScopes_.back().second;
    }
    for (std::size_t i = 0; i < kPerfEventCount; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        if (!delta.has(event))
            continue;
        counters->stats[i].add(delta.value[i]);
        counters->mask |= 1u << i;
    }
}

std::vector<std::pair<std::string, RunningStats>>
ProfileRegistry::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return scopes_;
}

std::vector<
    std::pair<std::string, ProfileRegistry::ScopeCounters>>
ProfileRegistry::counterSnapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return counterScopes_;
}

void
ProfileRegistry::registerStats(StatRegistry &registry,
                               const std::string &prefix) const
{
    for (const auto &[scope, stats] : snapshot()) {
        registry.addDistribution(prefix + "." + scope, stats,
                                 "wall-clock time of the '" +
                                     scope + "' scope",
                                 "seconds");
    }
    for (const auto &[scope, counters] : counterSnapshot()) {
        for (std::size_t i = 0; i < kPerfEventCount; ++i) {
            const auto event = static_cast<PerfEvent>(i);
            if (!(counters.mask & (1u << i)))
                continue;
            registry.addDistribution(
                prefix + "." + scope + "." +
                    perfEventName(event),
                counters.stats[i],
                std::string(perfEventName(event)) +
                    " delta per '" + scope + "' interval",
                "count");
        }
    }
}

std::string
ProfileRegistry::format() const
{
    const auto scopes = snapshot();
    if (scopes.empty())
        return "";
    std::size_t width = 0;
    for (const auto &[scope, stats] : scopes)
        width = std::max(width, scope.size());
    std::ostringstream os;
    os << "uatm profile (wall-clock seconds):\n";
    for (const auto &[scope, stats] : scopes) {
        os << "  " << scope
           << std::string(width - scope.size(), ' ')
           << "  total " << stats.mean() *
                  static_cast<double>(stats.count())
           << "  n " << stats.count()
           << "  mean " << stats.mean()
           << "  max " << stats.max() << '\n';
    }
    const auto counterScopes = counterSnapshot();
    if (!counterScopes.empty()) {
        os << "uatm profile counters (per-interval means):\n";
        for (const auto &[scope, counters] : counterScopes) {
            os << "  " << scope
               << std::string(width > scope.size()
                                  ? width - scope.size()
                                  : 0,
                              ' ');
            for (std::size_t i = 0; i < kPerfEventCount; ++i) {
                if (!(counters.mask & (1u << i)))
                    continue;
                os << "  "
                   << perfEventName(static_cast<PerfEvent>(i))
                   << ' ' << counters.stats[i].mean();
            }
            os << '\n';
        }
    }
    return os.str();
}

void
ProfileRegistry::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    scopes_.clear();
    counterScopes_.clear();
}

} // namespace uatm::obs
