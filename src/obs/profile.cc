/**
 * @file
 * Implementation of the scoped wall-clock profiler.
 */

#include "obs/profile.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm::obs {

namespace {

void
dumpProfileAtExit()
{
    const std::string dump = ProfileRegistry::instance().format();
    if (!dump.empty())
        std::fputs(dump.c_str(), stderr);
}

} // namespace

ProfileRegistry::ProfileRegistry()
{
    if (const char *env = std::getenv("UATM_PROFILE");
        env && *env && std::string_view(env) != "0") {
        enabled_ = true;
    }
}

ProfileRegistry &
ProfileRegistry::instance()
{
    static ProfileRegistry registry;
    // Arm the exit dump only after construction completes so the
    // handler is sequenced before the registry's destruction.
    static const bool armed = [&] {
        if (registry.enabled())
            std::atexit(dumpProfileAtExit);
        return true;
    }();
    (void)armed;
    return registry;
}

void
ProfileRegistry::record(const char *name, double seconds)
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto &[scope, stats] : scopes_) {
        if (scope == name) {
            stats.add(seconds);
            return;
        }
    }
    scopes_.emplace_back(name, RunningStats{});
    scopes_.back().second.add(seconds);
}

std::vector<std::pair<std::string, RunningStats>>
ProfileRegistry::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return scopes_;
}

void
ProfileRegistry::registerStats(StatRegistry &registry,
                               const std::string &prefix) const
{
    for (const auto &[scope, stats] : snapshot()) {
        registry.addDistribution(prefix + "." + scope, stats,
                                 "wall-clock time of the '" +
                                     scope + "' scope",
                                 "seconds");
    }
}

std::string
ProfileRegistry::format() const
{
    const auto scopes = snapshot();
    if (scopes.empty())
        return "";
    std::size_t width = 0;
    for (const auto &[scope, stats] : scopes)
        width = std::max(width, scope.size());
    std::ostringstream os;
    os << "uatm profile (wall-clock seconds):\n";
    for (const auto &[scope, stats] : scopes) {
        os << "  " << scope
           << std::string(width - scope.size(), ' ')
           << "  total " << stats.mean() *
                  static_cast<double>(stats.count())
           << "  n " << stats.count()
           << "  mean " << stats.mean()
           << "  max " << stats.max() << '\n';
    }
    return os.str();
}

void
ProfileRegistry::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    scopes_.clear();
}

} // namespace uatm::obs
