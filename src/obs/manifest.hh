/**
 * @file
 * Run manifests: a JSON record of *what produced an output file*.
 *
 * Every CSV the bench harness writes gets a sibling
 * <name>.manifest.json capturing the machine/cache/memory/CPU
 * configuration, the trace profile and seed, the library's git
 * version, and the final stat dump — enough to reproduce or audit
 * the run without spelunking through bench source.
 *
 * The manifest itself is a generic sectioned key/value document
 * (strings, numbers, booleans, plus an embedded stat registry), so
 * this layer depends only on util; the translation from typed
 * configs lives with the code that owns those types (bench/common,
 * examples).
 */

#ifndef UATM_OBS_MANIFEST_HH
#define UATM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uatm::obs {

class StatRegistry;

/** Bumped whenever the manifest layout changes shape. */
constexpr int kManifestSchemaVersion = 1;

class Manifest
{
  public:
    Manifest();

    /** Name of the binary/experiment producing the output. */
    void setTool(const std::string &tool);

    /** Set section.key = value, replacing any previous value. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);
    void set(const std::string &section, const std::string &key,
             const char *value);
    void set(const std::string &section, const std::string &key,
             double value);
    void set(const std::string &section, const std::string &key,
             std::uint64_t value);
    void set(const std::string &section, const std::string &key,
             bool value);

    /** Embed a full stat dump under the "stats" key. */
    void setStats(const StatRegistry &registry);

    /** Stored value, or "" when absent (numbers are rendered). */
    std::string lookup(const std::string &section,
                       const std::string &key) const;

    /** Number of (section, key) pairs stored. */
    std::size_t size() const;

    std::string toJson() const;

    /** Write toJson() to @p path; fatal() when unwritable. */
    void write(const std::string &path) const;

    /** `git describe` of the tree this library was built from. */
    static const char *gitDescribe();

  private:
    enum class FieldKind : std::uint8_t { String, Number, Bool };

    struct Field
    {
        std::string key;
        FieldKind kind = FieldKind::String;
        std::string str;
        double num = 0.0;
        bool flag = false;
    };

    struct Section
    {
        std::string name;
        std::vector<Field> fields;
    };

    std::vector<Section> sections_;  ///< insertion order
    std::string statsJson_;          ///< embedded stat dump

    Field &field(const std::string &section,
                 const std::string &key);
    const Field *findField(const std::string &section,
                           const std::string &key) const;
};

} // namespace uatm::obs

#endif // UATM_OBS_MANIFEST_HH
