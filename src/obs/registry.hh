/**
 * @file
 * Hierarchical statistic registry, gem5-style.
 *
 * Components describe their counters once — name, description,
 * unit — and register them here instead of (or alongside) their
 * bespoke structs.  Three stat kinds exist:
 *
 *  - Scalar:       a sampled numeric value (counter snapshot);
 *  - Formula:      a derived value evaluated lazily at dump time;
 *  - Distribution: a RunningStats summary (count/mean/stddev/
 *                  min/max), e.g. the wall-clock profile scopes.
 *
 * Names are dotted paths ("sim.fills", "stall.flush"); StatGroup
 * provides scoped prefixes so components can register relative
 * names.  Dumps come out as aligned key = value text or as a
 * versioned JSON document (see docs/OBSERVABILITY.md).
 */

#ifndef UATM_OBS_REGISTRY_HH
#define UATM_OBS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"

namespace uatm::obs {

/** Bumped whenever the JSON stat-dump layout changes shape. */
constexpr int kStatSchemaVersion = 1;

enum class StatKind : std::uint8_t
{
    Scalar,
    Formula,
    Distribution,
    Histogram,
};

const char *statKindName(StatKind kind);

/**
 * Log-bucketed latency histogram with lock-free concurrent adds.
 *
 * Bucket upper edges grow geometrically from @p first_upper by
 * @p growth; bucket 0 covers [0, first], bucket i covers
 * (edge(i-1), edge(i)], and the last bucket is the +Inf overflow.
 * The defaults (1, x2, 64 buckets) span 1 ns to ~9.2e18 ns with
 * <= 2x relative quantile error, which is what per-point runner
 * latencies need.
 *
 * add() and merge() are safe from any number of threads (relaxed
 * atomics per bucket, CAS loops for sum/min/max); the readers
 * (count/sum/quantile/dumps) take a racy-but-torn-free snapshot,
 * intended for use after the writers have joined.
 */
class LatencyHistogram
{
  public:
    static constexpr std::size_t kDefaultBuckets = 64;

    explicit LatencyHistogram(double first_upper = 1.0,
                              double growth = 2.0,
                              std::size_t buckets =
                                  kDefaultBuckets);

    LatencyHistogram(const LatencyHistogram &other);
    LatencyHistogram &operator=(const LatencyHistogram &other);
    LatencyHistogram(LatencyHistogram &&other) noexcept;
    LatencyHistogram &operator=(LatencyHistogram &&other) noexcept;

    /** Fold one sample in; thread-safe and lock-free. */
    void add(double x);

    /**
     * Fold another histogram in bucket-by-bucket; panics when the
     * bucket shapes differ.  Thread-safe on the destination.
     */
    void merge(const LatencyHistogram &other);

    void reset();

    std::uint64_t count() const;
    double sum() const;
    double min() const;  ///< 0 when empty
    double max() const;  ///< 0 when empty
    double mean() const; ///< 0 when empty

    std::size_t buckets() const { return counts_.size(); }
    double growth() const { return growth_; }

    /** Inclusive upper edge of bucket i; +Inf for the last. */
    double upperEdge(std::size_t i) const;

    std::uint64_t bucketCount(std::size_t i) const;

    /**
     * Smallest x with at least fraction @p q of samples <= x,
     * linearly interpolated within the containing bucket and
     * clamped to the observed [min, max].
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** True when the bucket shapes (edges) are identical. */
    bool sameShape(const LatencyHistogram &other) const;

  private:
    double first_ = 1.0;
    double growth_ = 2.0;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
    std::atomic<double> max_{0.0};

    std::size_t bucketIndex(double x) const;
    void copyFrom(const LatencyHistogram &other);
};

/** One registered statistic. */
struct StatEntry
{
    std::string name;
    std::string description;
    std::string unit;
    StatKind kind = StatKind::Scalar;

    double scalar = 0.0;                ///< Scalar value
    std::function<double()> formula;    ///< Formula evaluator
    RunningStats distribution;          ///< Distribution summary
    LatencyHistogram histogram;         ///< Histogram buckets

    /** Scalar value, evaluated formula, or distribution/histogram
     *  mean. */
    double valueNow() const;
};

class StatRegistry
{
  public:
    /** Register a sampled scalar; duplicate names panic. */
    void addScalar(const std::string &name, double value,
                   const std::string &description,
                   const std::string &unit = "");

    /** Register a formula evaluated at every dump. */
    void addFormula(const std::string &name,
                    std::function<double()> formula,
                    const std::string &description,
                    const std::string &unit = "");

    /** Register a distribution summary (copied). */
    void addDistribution(const std::string &name,
                         const RunningStats &distribution,
                         const std::string &description,
                         const std::string &unit = "");

    /**
     * Register a latency histogram (copied in).  The returned
     * reference accepts further concurrent add()s, but is only
     * valid until the next registration (the entry table may
     * reallocate).
     */
    LatencyHistogram &
    addLatencyHistogram(const std::string &name,
                        const LatencyHistogram &histogram,
                        const std::string &description,
                        const std::string &unit = "");

    bool contains(const std::string &name) const;

    /** Entry by name; nullptr when absent. */
    const StatEntry *find(const std::string &name) const;

    /**
     * Mutable entry by name, for components that keep feeding a
     * registered histogram after registration; nullptr when
     * absent.  Like addLatencyHistogram's reference, the pointer
     * is invalidated by the next registration.
     */
    StatEntry *findMutable(const std::string &name);

    /** Current value of the named stat; panics when absent. */
    double value(const std::string &name) const;

    /** All entries in registration order. */
    const std::vector<StatEntry> &entries() const
    {
        return entries_;
    }

    /** Entries whose name starts with "prefix." (or equals it). */
    std::vector<const StatEntry *>
    childrenOf(const std::string &prefix) const;

    std::size_t size() const { return entries_.size(); }
    void clear();

    /** Aligned "name = value  # unit: description" block. */
    std::string formatText() const;

    /**
     * Versioned JSON dump:
     * {"schema_version": N, "stats": {name: {kind, value, ...}}}.
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition (format 0.0.4) of every entry.
     *
     * Dotted stat names become `<prefix>_<name>` metric names with
     * '.' (and any other invalid character) mapped to '_', plus a
     * unit suffix derived from the stat's unit ("cycles" ->
     * "_cycles"; the unitless "count"/"bool" add nothing).  Each
     * sample carries @p labels verbatim, with label values escaped
     * per the exposition rules (backslash, double quote, newline)
     * and label names sanitized with the stricter label charset
     * (no ':').  Sanitization collisions ("a.b" vs "a-b", or a
     * gauge named like another metric's _bucket/_sum/_count
     * series) are resolved with a deterministic "_2"/"_3" suffix
     * so no metric name ever repeats its HELP/TYPE block.
     * Scalars and formulas emit as gauges with a HELP/TYPE pair;
     * distributions emit as summaries (quantile 0/1 = min/max,
     * plus _sum and _count); latency histograms emit as conformant
     * Prometheus histograms (cumulative `_bucket{le="..."}` series
     * ending in le="+Inf", plus `_sum` and `_count`).
     */
    std::string dumpPrometheus(
        const std::string &prefix = "uatm",
        const std::vector<std::pair<std::string, std::string>>
            &labels = {}) const;

  private:
    std::vector<StatEntry> entries_;
    std::unordered_map<std::string, std::size_t> index_;

    StatEntry &emplace(const std::string &name,
                       const std::string &description,
                       const std::string &unit, StatKind kind);
};

/**
 * Prefix-scoped view of a registry, for hierarchical registration:
 *
 *   StatGroup sim(registry, "sim");
 *   sim.addScalar("fills", fills, "line fills issued");
 *   sim.group("prefetch").addScalar("issued", n, "...");
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {}

    /** A nested group: this prefix + "." + @p name. */
    StatGroup group(const std::string &name) const;

    void
    addScalar(const std::string &name, double value,
              const std::string &description,
              const std::string &unit = "") const
    {
        registry_.addScalar(qualify(name), value, description,
                            unit);
    }

    void
    addFormula(const std::string &name,
               std::function<double()> formula,
               const std::string &description,
               const std::string &unit = "") const
    {
        registry_.addFormula(qualify(name), std::move(formula),
                             description, unit);
    }

    void
    addDistribution(const std::string &name,
                    const RunningStats &distribution,
                    const std::string &description,
                    const std::string &unit = "") const
    {
        registry_.addDistribution(qualify(name), distribution,
                                  description, unit);
    }

    LatencyHistogram &
    addLatencyHistogram(const std::string &name,
                        const LatencyHistogram &histogram,
                        const std::string &description,
                        const std::string &unit = "") const
    {
        return registry_.addLatencyHistogram(
            qualify(name), histogram, description, unit);
    }

    const std::string &prefix() const { return prefix_; }

  private:
    StatRegistry &registry_;
    std::string prefix_;

    std::string qualify(const std::string &name) const;
};

} // namespace uatm::obs

#endif // UATM_OBS_REGISTRY_HH
