/**
 * @file
 * Hierarchical statistic registry, gem5-style.
 *
 * Components describe their counters once — name, description,
 * unit — and register them here instead of (or alongside) their
 * bespoke structs.  Three stat kinds exist:
 *
 *  - Scalar:       a sampled numeric value (counter snapshot);
 *  - Formula:      a derived value evaluated lazily at dump time;
 *  - Distribution: a RunningStats summary (count/mean/stddev/
 *                  min/max), e.g. the wall-clock profile scopes.
 *
 * Names are dotted paths ("sim.fills", "stall.flush"); StatGroup
 * provides scoped prefixes so components can register relative
 * names.  Dumps come out as aligned key = value text or as a
 * versioned JSON document (see docs/OBSERVABILITY.md).
 */

#ifndef UATM_OBS_REGISTRY_HH
#define UATM_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"

namespace uatm::obs {

/** Bumped whenever the JSON stat-dump layout changes shape. */
constexpr int kStatSchemaVersion = 1;

enum class StatKind : std::uint8_t
{
    Scalar,
    Formula,
    Distribution,
};

const char *statKindName(StatKind kind);

/** One registered statistic. */
struct StatEntry
{
    std::string name;
    std::string description;
    std::string unit;
    StatKind kind = StatKind::Scalar;

    double scalar = 0.0;                ///< Scalar value
    std::function<double()> formula;    ///< Formula evaluator
    RunningStats distribution;          ///< Distribution summary

    /** Scalar value, evaluated formula, or distribution mean. */
    double valueNow() const;
};

class StatRegistry
{
  public:
    /** Register a sampled scalar; duplicate names panic. */
    void addScalar(const std::string &name, double value,
                   const std::string &description,
                   const std::string &unit = "");

    /** Register a formula evaluated at every dump. */
    void addFormula(const std::string &name,
                    std::function<double()> formula,
                    const std::string &description,
                    const std::string &unit = "");

    /** Register a distribution summary (copied). */
    void addDistribution(const std::string &name,
                         const RunningStats &distribution,
                         const std::string &description,
                         const std::string &unit = "");

    bool contains(const std::string &name) const;

    /** Entry by name; nullptr when absent. */
    const StatEntry *find(const std::string &name) const;

    /** Current value of the named stat; panics when absent. */
    double value(const std::string &name) const;

    /** All entries in registration order. */
    const std::vector<StatEntry> &entries() const
    {
        return entries_;
    }

    /** Entries whose name starts with "prefix." (or equals it). */
    std::vector<const StatEntry *>
    childrenOf(const std::string &prefix) const;

    std::size_t size() const { return entries_.size(); }
    void clear();

    /** Aligned "name = value  # unit: description" block. */
    std::string formatText() const;

    /**
     * Versioned JSON dump:
     * {"schema_version": N, "stats": {name: {kind, value, ...}}}.
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition (format 0.0.4) of every entry.
     *
     * Dotted stat names become `<prefix>_<name>` metric names with
     * '.' (and any other invalid character) mapped to '_', plus a
     * unit suffix derived from the stat's unit ("cycles" ->
     * "_cycles"; the unitless "count"/"bool" add nothing).  Each
     * sample carries @p labels verbatim, with label values escaped
     * per the exposition rules (backslash, double quote, newline).
     * Scalars and formulas emit as gauges with a HELP/TYPE pair;
     * distributions emit as summaries (quantile 0/1 = min/max,
     * plus _sum and _count).
     */
    std::string dumpPrometheus(
        const std::string &prefix = "uatm",
        const std::vector<std::pair<std::string, std::string>>
            &labels = {}) const;

  private:
    std::vector<StatEntry> entries_;
    std::unordered_map<std::string, std::size_t> index_;

    StatEntry &emplace(const std::string &name,
                       const std::string &description,
                       const std::string &unit, StatKind kind);
};

/**
 * Prefix-scoped view of a registry, for hierarchical registration:
 *
 *   StatGroup sim(registry, "sim");
 *   sim.addScalar("fills", fills, "line fills issued");
 *   sim.group("prefetch").addScalar("issued", n, "...");
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {}

    /** A nested group: this prefix + "." + @p name. */
    StatGroup group(const std::string &name) const;

    void
    addScalar(const std::string &name, double value,
              const std::string &description,
              const std::string &unit = "") const
    {
        registry_.addScalar(qualify(name), value, description,
                            unit);
    }

    void
    addFormula(const std::string &name,
               std::function<double()> formula,
               const std::string &description,
               const std::string &unit = "") const
    {
        registry_.addFormula(qualify(name), std::move(formula),
                             description, unit);
    }

    void
    addDistribution(const std::string &name,
                    const RunningStats &distribution,
                    const std::string &description,
                    const std::string &unit = "") const
    {
        registry_.addDistribution(qualify(name), distribution,
                                  description, unit);
    }

    const std::string &prefix() const { return prefix_; }

  private:
    StatRegistry &registry_;
    std::string prefix_;

    std::string qualify(const std::string &name) const;
};

} // namespace uatm::obs

#endif // UATM_OBS_REGISTRY_HH
