/**
 * @file
 * Self-contained microbenchmark harness + perf comparator.
 *
 * The harness times each registered benchmark on the monotonic
 * clock: warmup repetitions first (also where the benchmark's
 * stat provider gets wired up), then N timed repetitions, then
 * robust statistics over the per-rep times — min, median, and the
 * median absolute deviation (MAD), which tolerate the occasional
 * scheduler hiccup far better than a mean/stddev pair.  Results
 * print as an aligned table and land in a machine-readable
 * BENCH_<suite>.json under $UATM_BENCH_OUT so runs can be
 * trend-plotted (tools/plot_figures.py --bench) and gated
 * (tools/perf_diff) across commits.
 *
 * Each record carries the benchmark name, rep counts, ns/op,
 * items/s, and a stat-registry snapshot *delta* — the simulated
 * work (fills, stall cycles, ...) done by the timed reps alone —
 * so a throughput change can be told apart from a workload change.
 *
 * The comparator half (loadBenchFile/comparePerf) powers
 * tools/perf_diff: changes in median ns/op beyond a MAD-scaled
 * noise threshold flag as improvements or regressions, and
 * countRegressions() turns that into a CI exit code.
 */

#ifndef UATM_OBS_BENCH_HH
#define UATM_OBS_BENCH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/perf_counters.hh"
#include "obs/registry.hh"

namespace uatm::obs {

/** Bumped whenever the BENCH_*.json layout changes shape. */
constexpr int kBenchSchemaVersion = 1;

/**
 * Keep @p value observably alive so the optimizer cannot delete
 * the benchmarked computation that produced it.
 */
template <typename T>
inline void
doNotOptimize(const T &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "r,m"(value) : "memory");
#else
    // Portable fallback: escape the address through a volatile.
    static const void *volatile sink;
    sink = &value;
    (void)sink;
#endif
}

/** Force pending writes to complete before the next timing read. */
inline void
clobberMemory()
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : : "memory");
#endif
}

/**
 * Per-run context handed to every benchmark body.  The body does
 * one fixed batch of work per call (one repetition) and declares
 * its size via setItems(); optionally it wires a stats provider
 * that registers the cumulative counters of the objects it
 * exercises — the harness snapshots that registry before and
 * after the timed reps and records the per-stat delta.
 */
class BenchState
{
  public:
    /** Items (refs, accesses, solves, ...) done per repetition. */
    void setItems(std::uint64_t items_per_rep)
    {
        items_ = items_per_rep;
    }

    /**
     * Register cumulative counters into @p registry each call.
     * Invoked once after warmup (baseline) and once after the
     * last timed rep; the JSON record keeps value deltas.
     */
    void
    setStatsProvider(std::function<void(StatRegistry &)> provider)
    {
        statsProvider_ = std::move(provider);
    }

    /**
     * Declare the thread configuration this benchmark ran with
     * (e.g. from RunnerStats).  Recorded per benchmark in the
     * JSON so tools/perf_diff can refuse to compare runs whose
     * thread configs differ; @p used keeps the runner convention
     * of 0 meaning inline on the calling thread.
     */
    void
    setThreads(unsigned requested, unsigned used)
    {
        threadsRequested_ = requested;
        threadsUsed_ = used;
        threadsSet_ = true;
    }

    std::uint64_t items() const { return items_; }
    bool threadsSet() const { return threadsSet_; }
    unsigned threadsRequested() const { return threadsRequested_; }
    unsigned threadsUsed() const { return threadsUsed_; }
    const std::function<void(StatRegistry &)> &
    statsProvider() const
    {
        return statsProvider_;
    }

  private:
    std::uint64_t items_ = 0;
    unsigned threadsRequested_ = 0;
    unsigned threadsUsed_ = 0;
    bool threadsSet_ = false;
    std::function<void(StatRegistry &)> statsProvider_;
};

using BenchFn = std::function<void(BenchState &)>;

/** Robust timing summary plus the work done by one benchmark. */
struct BenchResult
{
    std::string name;
    std::uint64_t reps = 0;
    std::uint64_t warmupReps = 0;
    std::uint64_t itemsPerRep = 0;

    double nsPerRepMin = 0.0;
    double nsPerRepMedian = 0.0;
    double nsPerRepMad = 0.0;  ///< raw MAD around the median

    /** Thread config declared via BenchState::setThreads(). */
    bool hasThreads = false;
    unsigned threadsRequested = 0;
    unsigned threadsUsed = 0;

    /** (stat name, after - before) over the timed reps. */
    std::vector<std::pair<std::string, double>> statDelta;

    /**
     * Hardware counter deltas summed over the timed reps (child
     * threads included), for perf_diff --counter gating.
     * available == false when the host forbids perf_event_open.
     */
    PerfCounterValues counters;

    /** Median ns per item (per rep when items were not set). */
    double nsPerOp() const;

    /** Items per wall-clock second at the median rep time. */
    double itemsPerSecond() const;
};

/**
 * An ordered set of named benchmarks, run together as one suite.
 */
class BenchSuite
{
  public:
    struct RunOptions
    {
        /** Only run benchmarks whose name contains this. */
        std::string filter;

        /** Print the (filtered) names and do nothing else. */
        bool listOnly = false;

        /** Timed repetitions; 0 = $UATM_BENCH_REPS if set, else
         *  20.  An explicit value (e.g. from --reps=) wins. */
        std::uint32_t reps = 0;

        /** Untimed warmup repetitions, clamped to >= 1 so stat
         *  providers get wired before the baseline snapshot. */
        std::uint32_t warmup = 2;

        /** Skip writing BENCH_<suite>.json (tests). */
        bool writeJson = true;

        /** Output directory; empty = $UATM_BENCH_OUT or
         *  "bench_out". */
        std::string outDir;
    };

    explicit BenchSuite(std::string name) : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Register a benchmark; duplicate names panic. */
    void add(const std::string &name, BenchFn fn);

    std::size_t size() const { return benchmarks_.size(); }

    /**
     * Run every benchmark matching the filter, print an aligned
     * result table, and (unless disabled) write
     * <outDir>/BENCH_<suite>.json.  Returns the number run (or,
     * with listOnly, the number of names printed).
     */
    std::size_t run(const RunOptions &options);
    std::size_t run() { return run(RunOptions{}); }

    /** Results of the last run(), in execution order. */
    const std::vector<BenchResult> &results() const
    {
        return results_;
    }

    /** The last run() as a BENCH_*.json document. */
    std::string toJson() const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, BenchFn>> benchmarks_;
    std::vector<BenchResult> results_;

    BenchResult runOne(const std::string &name, const BenchFn &fn,
                       const RunOptions &options) const;
};

/** How one benchmark's median ns/op moved between two runs. */
struct PerfDelta
{
    enum class Verdict : std::uint8_t
    {
        Similar,    ///< within the noise threshold
        Improved,   ///< faster beyond the threshold
        Regressed,  ///< slower beyond the threshold
        Added,      ///< only in the after run
        Removed,    ///< only in the before run
    };

    std::string name;
    double beforeNsPerOp = 0.0;
    double afterNsPerOp = 0.0;
    double thresholdNs = 0.0;  ///< noise allowance applied
    Verdict verdict = Verdict::Similar;

    /** Suite-wide drift factor divided out of the after time
     *  before the verdict was taken (1.0 = none applied). */
    double appliedDrift = 1.0;

    /** after/before; 0 when the benchmark is Added/Removed. */
    double ratio() const;
};

const char *perfVerdictName(PerfDelta::Verdict verdict);

struct PerfDiffOptions
{
    /** Noise threshold in MAD-derived sigmas (1.4826 * MAD). */
    double sigmas = 4.0;

    /** Relative floor: ignore changes below this fraction of the
     *  before time, however quiet the MADs claim the runs are.
     *  The 10% default absorbs the between-run frequency/load
     *  drift of shared machines; tighten it (--min-rel) on a
     *  dedicated runner. */
    double minRelative = 0.10;

    /** Divide the median after/before ratio of the suite out of
     *  every after time before taking verdicts (needs >= 3
     *  matched benchmarks).  Machine-frequency/load drift moves
     *  the whole suite together; a code regression is localized
     *  — so this gates on *relative* movement and survives noisy
     *  shared runners.  The cost: a change that slows every
     *  benchmark uniformly reads as drift, so the applied factor
     *  is reported (PerfDelta::appliedDrift) for a human to
     *  sanity-check. */
    bool normalizeDrift = true;
};

/**
 * Compare two parsed BENCH_*.json documents benchmark-by-
 * benchmark (matched on name, in before-document order, with
 * added benchmarks appended).
 */
std::vector<PerfDelta>
comparePerf(const JsonValue &before, const JsonValue &after,
            const PerfDiffOptions &options = {});

/**
 * How one benchmark's per-op hardware counter moved between two
 * runs.  Counter gating (perf_diff --counter=instructions) is the
 * low-noise complement of wall-time gating: instructions retired
 * per op barely move under frequency scaling or host load, so a
 * change beyond the relative threshold is a code change, not
 * noise.
 */
struct CounterDelta
{
    enum class Verdict : std::uint8_t
    {
        Similar,    ///< within the relative threshold
        Improved,   ///< fewer counts per op beyond it
        Regressed,  ///< more counts per op beyond it
        Skipped,    ///< a side lacks the counter; never gates
    };

    std::string name;
    double beforePerOp = 0.0;
    double afterPerOp = 0.0;
    /** Relative threshold applied (counterMinRelative). */
    double threshold = 0.0;
    Verdict verdict = Verdict::Skipped;

    /** after/before; 0 when Skipped or before is 0. */
    double ratio() const;
};

const char *counterVerdictName(CounterDelta::Verdict verdict);

struct CounterDiffOptions
{
    /** Relative change below this fraction is Similar.  Counters
     *  are far quieter than wall time, so 5% is generous. */
    double minRelative = 0.05;
};

/**
 * Compare one hardware counter, per op (value / (reps * items)),
 * across two BENCH_*.json documents.  Benchmarks missing from
 * either side are omitted; benchmarks where either record lacks
 * an available value for @p event appear as Skipped so the CLI
 * can say so without gating on them.
 */
std::vector<CounterDelta>
compareCounter(const JsonValue &before, const JsonValue &after,
               PerfEvent event,
               const CounterDiffOptions &options = {});

/** Regressed entries in @p deltas (Skipped never counts). */
std::size_t
countCounterRegressions(const std::vector<CounterDelta> &deltas);

/** Aligned per-op counter before/after table. */
std::string
formatCounterTable(const std::vector<CounterDelta> &deltas,
                   PerfEvent event);

/** Regressed entries in @p deltas (the gate's exit code). */
std::size_t countRegressions(const std::vector<PerfDelta> &deltas);

/** Aligned before/after/delta/verdict table for terminals. */
std::string formatPerfTable(const std::vector<PerfDelta> &deltas);

/**
 * Read and parse one BENCH_*.json file.  Returns false (with the
 * message in @p error) on I/O or parse failure.
 */
bool loadBenchFile(const std::string &path, JsonValue &out,
                   std::string &error);

/**
 * True when two BENCH_*.json documents were measured on
 * comparable configurations: same host core count (when both
 * recorded one) and, for every benchmark present in both, the
 * same threads_requested/threads_used.  On mismatch @p error
 * explains which field differs; perf_diff refuses to gate on
 * incomparable runs (--ignore-threads overrides).
 */
bool perfComparable(const JsonValue &before,
                    const JsonValue &after, std::string &error);

} // namespace uatm::obs

#endif // UATM_OBS_BENCH_HH
