/**
 * @file
 * Implementation of the stall-interval tracer and its Chrome
 * trace_event exporter.
 */

#include "obs/trace_event.hh"

#include <cstdlib>
#include <fstream>
#include <map>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "util/logging.hh"

namespace uatm::obs {

EventTracer::EventTracer(std::size_t capacity)
{
    setCapacity(capacity);
}

void
EventTracer::setCapacity(std::size_t capacity)
{
    UATM_ASSERT(capacity >= 1, "tracer needs at least one slot");
    ring_.assign(capacity, TraceEvent{});
    head_ = 0;
    recorded_ = 0;
}

std::size_t
EventTracer::size() const
{
    return recorded_ < ring_.size()
               ? static_cast<std::size_t>(recorded_)
               : ring_.size();
}

std::uint64_t
EventTracer::dropped() const
{
    return recorded_ < ring_.size() ? 0 : recorded_ - ring_.size();
}

const char *
EventTracer::intern(const std::string &name)
{
    return interned_.insert(name).first->c_str();
}

void
EventTracer::registerStats(StatRegistry &registry,
                           const std::string &prefix) const
{
    registry.addScalar(prefix + ".recorded",
                       static_cast<double>(recorded()),
                       "trace events ever recorded");
    registry.addScalar(prefix + ".dropped",
                       static_cast<double>(dropped()),
                       "trace events lost to ring wraparound");
    registry.addScalar(prefix + ".capacity",
                       static_cast<double>(capacity()),
                       "trace ring capacity in events");
}

std::vector<TraceEvent>
EventTracer::events() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    // Oldest event: at index 0 until the ring wraps, then at head_
    // (the next slot to be overwritten).
    const std::size_t oldest =
        recorded_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(oldest + i) % ring_.size()]);
    return out;
}

void
EventTracer::clear()
{
    head_ = 0;
    recorded_ = 0;
}

std::string
EventTracer::toChromeJson() const
{
    // Stable tid per category so each stall class gets its own
    // track in the viewer.  Counter samples attach to the process
    // (their track is named by the event, not a thread).
    std::map<std::string, int> tids;
    const auto all = events();
    for (const auto &event : all) {
        if (!event.counter)
            tids.emplace(event.category,
                         static_cast<int>(tids.size()) + 1);
    }

    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();

    w.beginObject()
        .keyValue("name", "process_name")
        .keyValue("ph", "M")
        .keyValue("pid", 0)
        .key("args").beginObject()
        .keyValue("name", "uatm timing engine (1 cycle = 1us)")
        .endObject()
        .endObject();
    for (const auto &[category, tid] : tids) {
        w.beginObject()
            .keyValue("name", "thread_name")
            .keyValue("ph", "M")
            .keyValue("pid", 0)
            .keyValue("tid", tid)
            .key("args").beginObject()
            .keyValue("name", category)
            .endObject()
            .endObject();
    }

    for (const auto &event : all) {
        w.beginObject()
            .keyValue("name", event.name)
            .keyValue("cat", event.category)
            .keyValue("pid", 0);
        if (event.counter) {
            w.keyValue("ts", event.start)
                .keyValue("ph", "C")
                .key("args").beginObject()
                .keyValue("value", event.arg)
                .endObject()
                .endObject();
            continue;
        }
        w.keyValue("tid", tids.at(event.category))
            .keyValue("ts", event.start);
        if (event.duration == 0) {
            w.keyValue("ph", "i").keyValue("s", "t");
        } else {
            w.keyValue("ph", "X").keyValue("dur", event.duration);
        }
        w.key("args").beginObject()
            .keyValue("addr", event.arg)
            .endObject()
            .endObject();
    }
    w.endArray();

    w.keyValue("displayTimeUnit", "ms");
    w.key("otherData").beginObject()
        .keyValue("schema_version", kTraceSchemaVersion)
        .keyValue("clock", "CPU cycles rendered as microseconds")
        .keyValue("events_recorded", recorded())
        .keyValue("events_dropped", dropped())
        .endObject();
    w.endObject();
    return w.str();
}

bool
EventTracer::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write trace file '", path, "'");
        return false;
    }
    out << toChromeJson();
    return true;
}

namespace {

/** UATM_TRACE destination; empty when tracing is off. */
std::string &
globalTracePath()
{
    static std::string path;
    return path;
}

void
writeGlobalTraceAtExit()
{
    flushGlobalTrace();
}

EventTracer
makeGlobalTracer()
{
    std::size_t capacity = EventTracer::kDefaultCapacity;
    if (const char *env = std::getenv("UATM_TRACE_EVENTS")) {
        const long long parsed = std::atoll(env);
        if (parsed >= 1)
            capacity = static_cast<std::size_t>(parsed);
        else
            warn("ignoring invalid UATM_TRACE_EVENTS='", env, "'");
    }
    EventTracer tracer(capacity);
    if (const char *env = std::getenv("UATM_TRACE");
        env && *env) {
        globalTracePath() = env;
        tracer.setEnabled(true);
    }
    return tracer;
}

} // namespace

EventTracer &
globalTracer()
{
    static EventTracer tracer = makeGlobalTracer();
    // Registered only after the tracer's construction completes,
    // so the exit handler is sequenced before its destruction.
    static const bool armed = [] {
        if (!globalTracePath().empty())
            std::atexit(writeGlobalTraceAtExit);
        return true;
    }();
    (void)armed;
    return tracer;
}

void
flushGlobalTrace()
{
    const std::string &path = globalTracePath();
    if (path.empty())
        return;
    // One-shot: a wrapped ring means the written trace silently
    // starts mid-run, which is easy to misread as "the run began
    // here" — say so loudly, but only once per process however
    // many times the trace is flushed.
    static bool warnedDropped = false;
    if (globalTracer().dropped() > 0 && !warnedDropped) {
        warnedDropped = true;
        warn("trace ring overflowed: ", globalTracer().dropped(),
             " oldest events were dropped and the exported trace "
             "is truncated; raise UATM_TRACE_EVENTS (currently ",
             globalTracer().capacity(), ")");
    }
    if (globalTracer().writeChromeJson(path)) {
        inform("wrote Chrome trace (", globalTracer().size(),
               " events, ", globalTracer().dropped(),
               " dropped) to ", path);
    }
}

} // namespace uatm::obs
