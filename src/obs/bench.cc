/**
 * @file
 * Implementation of the microbenchmark harness and the perf
 * comparator behind tools/perf_diff.
 */

#include "obs/bench.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/manifest.hh"
#include "util/logging.hh"

namespace uatm::obs {

namespace {

/** Median of @p samples (sorted in place; empty -> 0). */
double
median(std::vector<double> &samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const std::size_t mid = samples.size() / 2;
    if (samples.size() % 2 == 1)
        return samples[mid];
    return 0.5 * (samples[mid - 1] + samples[mid]);
}

/** Median absolute deviation around @p center. */
double
medianAbsDeviation(const std::vector<double> &samples,
                   double center)
{
    std::vector<double> deviations;
    deviations.reserve(samples.size());
    for (double s : samples)
        deviations.push_back(std::abs(s - center));
    return median(deviations);
}

/** Evaluate every entry right now (formulas see live objects). */
std::vector<std::pair<std::string, double>>
snapshotValues(const StatRegistry &registry)
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(registry.size());
    for (const auto &entry : registry.entries())
        out.emplace_back(entry.name, entry.valueNow());
    return out;
}

/** 1.4826 * MAD estimates sigma for normally distributed noise. */
constexpr double kMadToSigma = 1.4826;

} // namespace

double
BenchResult::nsPerOp() const
{
    const double items =
        itemsPerRep ? static_cast<double>(itemsPerRep) : 1.0;
    return nsPerRepMedian / items;
}

double
BenchResult::itemsPerSecond() const
{
    if (nsPerRepMedian <= 0.0)
        return 0.0;
    const double items =
        itemsPerRep ? static_cast<double>(itemsPerRep) : 1.0;
    return items * 1e9 / nsPerRepMedian;
}

void
BenchSuite::add(const std::string &name, BenchFn fn)
{
    UATM_ASSERT(!name.empty(), "benchmark name must not be empty");
    for (const auto &[existing, unused] : benchmarks_)
        UATM_ASSERT(existing != name,
                    "duplicate benchmark registration: ", name);
    benchmarks_.emplace_back(name, std::move(fn));
}

BenchResult
BenchSuite::runOne(const std::string &name, const BenchFn &fn,
                   const RunOptions &options) const
{
    BenchState state;

    std::uint32_t reps = options.reps;
    if (reps == 0) {
        reps = 20;
        if (const char *env = std::getenv("UATM_BENCH_REPS")) {
            const long long parsed = std::atoll(env);
            if (parsed >= 1) {
                reps = static_cast<std::uint32_t>(parsed);
            } else {
                warn("ignoring invalid UATM_BENCH_REPS='", env,
                     "'");
            }
        }
    }
    const std::uint32_t warmup = std::max(options.warmup, 1u);

    for (std::uint32_t i = 0; i < warmup; ++i)
        fn(state);

    // Baseline snapshot after warmup: the recorded deltas cover
    // exactly the timed repetitions.
    std::vector<std::pair<std::string, double>> before;
    if (state.statsProvider()) {
        StatRegistry registry;
        state.statsProvider()(registry);
        before = snapshotValues(registry);
    }

    // Counters run in inherit mode so threads the benchmark
    // spawns during the timed reps (e.g. runner workers) are
    // counted too.  Unavailability is recorded, never fatal.
    PerfCounterOptions counterOptions;
    counterOptions.inheritChildren = true;
    PerfCounterGroup counters(counterOptions);
    PerfReading counterBegin;
    if (counters.available()) {
        counters.start();
        counterBegin = counters.read();
    }

    std::vector<double> ns;
    ns.reserve(reps);
    for (std::uint32_t i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn(state);
        const auto t1 = std::chrono::steady_clock::now();
        ns.push_back(
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count());
    }

    PerfCounterValues counterDelta;
    if (counters.available()) {
        counterDelta = scaleDelta(counterBegin, counters.read());
        counters.stop();
    }

    BenchResult result;
    result.name = name;
    result.reps = reps;
    result.warmupReps = warmup;
    result.itemsPerRep = state.items();
    result.nsPerRepMin =
        *std::min_element(ns.begin(), ns.end());
    result.nsPerRepMedian = median(ns);
    result.nsPerRepMad =
        medianAbsDeviation(ns, result.nsPerRepMedian);
    result.hasThreads = state.threadsSet();
    result.threadsRequested = state.threadsRequested();
    result.threadsUsed = state.threadsUsed();
    result.counters = counterDelta;

    if (state.statsProvider()) {
        StatRegistry registry;
        state.statsProvider()(registry);
        for (const auto &[stat, after] :
             snapshotValues(registry)) {
            double base = 0.0;
            for (const auto &[bname, bvalue] : before) {
                if (bname == stat) {
                    base = bvalue;
                    break;
                }
            }
            result.statDelta.emplace_back(stat, after - base);
        }
    }
    return result;
}

std::size_t
BenchSuite::run(const RunOptions &options)
{
    std::vector<const std::pair<std::string, BenchFn> *> selected;
    for (const auto &entry : benchmarks_) {
        if (options.filter.empty() ||
            entry.first.find(options.filter) != std::string::npos)
            selected.push_back(&entry);
    }

    if (options.listOnly) {
        for (const auto *entry : selected)
            std::printf("%s\n", entry->first.c_str());
        return selected.size();
    }

    results_.clear();
    std::size_t width = 9;  // "benchmark"
    for (const auto *entry : selected)
        width = std::max(width, entry->first.size());

    std::printf("%-*s %10s %12s %12s %12s %14s\n",
                static_cast<int>(width), "benchmark", "reps",
                "min ns/op", "med ns/op", "mad ns/op", "items/s");
    for (const auto *entry : selected) {
        const BenchResult result =
            runOne(entry->first, entry->second, options);
        const double items =
            result.itemsPerRep
                ? static_cast<double>(result.itemsPerRep)
                : 1.0;
        std::printf("%-*s %10llu %12.2f %12.2f %12.2f %14.0f\n",
                    static_cast<int>(width), result.name.c_str(),
                    static_cast<unsigned long long>(result.reps),
                    result.nsPerRepMin / items, result.nsPerOp(),
                    result.nsPerRepMad / items,
                    result.itemsPerSecond());
        results_.push_back(std::move(result));
    }

    if (options.writeJson && !results_.empty()) {
        const char *env = std::getenv("UATM_BENCH_OUT");
        const std::filesystem::path dir =
            !options.outDir.empty() ? options.outDir
            : (env && *env)        ? env
                                    : "bench_out";
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            fatal("cannot create benchmark output directory '",
                  dir.string(), "': ", ec.message());
        }
        const std::filesystem::path path =
            (dir / ("BENCH_" + name_ + ".json"))
                .lexically_normal();
        std::ofstream out(path);
        if (!out) {
            fatal("cannot write benchmark record '", path.string(),
                  "'");
        }
        out << toJson();
        out.close();
        if (!out) {
            fatal("failed while writing benchmark record '",
                  path.string(), "'");
        }
        std::printf("[bench-json] wrote %s\n",
                    path.string().c_str());
    }
    return results_.size();
}

std::string
BenchSuite::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.keyValue("schema_version", kBenchSchemaVersion);
    w.keyValue("suite", name_);
    w.keyValue("git_describe", Manifest::gitDescribe());
    w.keyValue("host_cores",
               std::thread::hardware_concurrency());
    w.key("benchmarks").beginArray();
    for (const auto &result : results_) {
        w.beginObject();
        w.keyValue("name", result.name);
        w.keyValue("reps", result.reps);
        w.keyValue("warmup_reps", result.warmupReps);
        w.keyValue("items_per_rep", result.itemsPerRep);
        if (result.hasThreads) {
            w.keyValue("threads_requested",
                       result.threadsRequested);
            w.keyValue("threads_used", result.threadsUsed);
        }
        w.key("ns_per_rep").beginObject()
            .keyValue("min", result.nsPerRepMin)
            .keyValue("median", result.nsPerRepMedian)
            .keyValue("mad", result.nsPerRepMad)
            .endObject();
        w.keyValue("ns_per_op", result.nsPerOp());
        w.keyValue("items_per_second", result.itemsPerSecond());
        w.key("stat_delta").beginObject();
        for (const auto &[stat, delta] : result.statDelta)
            w.keyValue(stat, delta);
        w.endObject();
        w.key("counters");
        result.counters.writeJson(w);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

double
PerfDelta::ratio() const
{
    if (verdict == Verdict::Added || verdict == Verdict::Removed ||
        beforeNsPerOp <= 0.0)
        return 0.0;
    return afterNsPerOp / beforeNsPerOp;
}

const char *
perfVerdictName(PerfDelta::Verdict verdict)
{
    switch (verdict) {
      case PerfDelta::Verdict::Similar:
        return "similar";
      case PerfDelta::Verdict::Improved:
        return "improved";
      case PerfDelta::Verdict::Regressed:
        return "REGRESSED";
      case PerfDelta::Verdict::Added:
        return "added";
      case PerfDelta::Verdict::Removed:
        return "removed";
    }
    panic("unknown PerfDelta::Verdict");
}

namespace {

/** MAD of one record, converted to ns/op units. */
double
recordMadNsPerOp(const JsonValue &record)
{
    const JsonValue *per_rep = record.find("ns_per_rep");
    const double mad =
        per_rep ? per_rep->numberOr("mad", 0.0) : 0.0;
    const double items =
        std::max(record.numberOr("items_per_rep", 1.0), 1.0);
    return mad / items;
}

const JsonValue *
findBenchmark(const JsonValue &doc, const std::string &name)
{
    const JsonValue *list = doc.find("benchmarks");
    if (!list || !list->isArray())
        return nullptr;
    for (const JsonValue &record : list->items()) {
        if (record.isObject() &&
            record.stringOr("name", "") == name)
            return &record;
    }
    return nullptr;
}

} // namespace

std::vector<PerfDelta>
comparePerf(const JsonValue &before, const JsonValue &after,
            const PerfDiffOptions &options)
{
    std::vector<PerfDelta> out;
    const JsonValue *before_list = before.find("benchmarks");
    const JsonValue *after_list = after.find("benchmarks");

    // Suite-wide drift: the median after/before ratio over the
    // matched benchmarks.  Frequency scaling and background load
    // shift every benchmark together; dividing the median shift
    // out leaves only *relative* movement for the verdicts.
    double drift = 1.0;
    if (options.normalizeDrift && before_list &&
        before_list->isArray()) {
        std::vector<double> ratios;
        for (const JsonValue &record : before_list->items()) {
            if (!record.isObject())
                continue;
            const double b = record.numberOr("ns_per_op", 0.0);
            const JsonValue *peer = findBenchmark(
                after, record.stringOr("name", "?"));
            if (!peer || b <= 0.0)
                continue;
            const double a = peer->numberOr("ns_per_op", 0.0);
            if (a > 0.0)
                ratios.push_back(a / b);
        }
        if (ratios.size() >= 3)
            drift = median(ratios);
    }

    if (before_list && before_list->isArray()) {
        for (const JsonValue &record : before_list->items()) {
            if (!record.isObject())
                continue;
            PerfDelta delta;
            delta.name = record.stringOr("name", "?");
            delta.beforeNsPerOp =
                record.numberOr("ns_per_op", 0.0);
            const JsonValue *peer =
                findBenchmark(after, delta.name);
            if (!peer) {
                delta.verdict = PerfDelta::Verdict::Removed;
                out.push_back(std::move(delta));
                continue;
            }
            delta.afterNsPerOp = peer->numberOr("ns_per_op", 0.0);
            delta.appliedDrift = drift;
            const double noise =
                options.sigmas * kMadToSigma *
                std::max(recordMadNsPerOp(record),
                         recordMadNsPerOp(*peer));
            delta.thresholdNs =
                std::max(noise, options.minRelative *
                                    delta.beforeNsPerOp);
            const double diff =
                delta.afterNsPerOp / drift - delta.beforeNsPerOp;
            if (diff > delta.thresholdNs)
                delta.verdict = PerfDelta::Verdict::Regressed;
            else if (-diff > delta.thresholdNs)
                delta.verdict = PerfDelta::Verdict::Improved;
            else
                delta.verdict = PerfDelta::Verdict::Similar;
            out.push_back(std::move(delta));
        }
    }

    if (after_list && after_list->isArray()) {
        for (const JsonValue &record : after_list->items()) {
            if (!record.isObject())
                continue;
            const std::string name = record.stringOr("name", "?");
            if (findBenchmark(before, name))
                continue;
            PerfDelta delta;
            delta.name = name;
            delta.afterNsPerOp = record.numberOr("ns_per_op", 0.0);
            delta.verdict = PerfDelta::Verdict::Added;
            out.push_back(std::move(delta));
        }
    }
    return out;
}

std::size_t
countRegressions(const std::vector<PerfDelta> &deltas)
{
    std::size_t n = 0;
    for (const auto &delta : deltas)
        n += delta.verdict == PerfDelta::Verdict::Regressed;
    return n;
}

std::string
formatPerfTable(const std::vector<PerfDelta> &deltas)
{
    std::size_t width = 9;  // "benchmark"
    for (const auto &delta : deltas)
        width = std::max(width, delta.name.size());

    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-*s %14s %14s %9s %12s %10s\n",
                  static_cast<int>(width), "benchmark",
                  "before ns/op", "after ns/op", "change",
                  "threshold", "verdict");
    os << line;
    for (const auto &delta : deltas) {
        const bool matched =
            delta.verdict != PerfDelta::Verdict::Added &&
            delta.verdict != PerfDelta::Verdict::Removed;
        char change[16] = "-";
        if (matched && delta.beforeNsPerOp > 0.0) {
            std::snprintf(change, sizeof(change), "%+.1f%%",
                          (delta.ratio() - 1.0) * 100.0);
        }
        std::snprintf(line, sizeof(line),
                      "%-*s %14.2f %14.2f %9s %12.2f %10s\n",
                      static_cast<int>(width), delta.name.c_str(),
                      delta.beforeNsPerOp, delta.afterNsPerOp,
                      change, delta.thresholdNs,
                      perfVerdictName(delta.verdict));
        os << line;
    }
    return os.str();
}

double
CounterDelta::ratio() const
{
    if (verdict == Verdict::Skipped || beforePerOp <= 0.0)
        return 0.0;
    return afterPerOp / beforePerOp;
}

const char *
counterVerdictName(CounterDelta::Verdict verdict)
{
    switch (verdict) {
      case CounterDelta::Verdict::Similar:
        return "similar";
      case CounterDelta::Verdict::Improved:
        return "improved";
      case CounterDelta::Verdict::Regressed:
        return "REGRESSED";
      case CounterDelta::Verdict::Skipped:
        return "skipped";
    }
    panic("unknown CounterDelta::Verdict");
}

namespace {

/** Per-op counter value of one record; false when absent. */
bool
recordCounterPerOp(const JsonValue &record, PerfEvent event,
                   double &out)
{
    const JsonValue *counters = record.find("counters");
    if (!counters)
        return false;
    const PerfCounterValues values =
        PerfCounterValues::fromJson(*counters);
    if (!values.available || !values.has(event))
        return false;
    const double reps =
        std::max(record.numberOr("reps", 0.0), 1.0);
    const double items =
        std::max(record.numberOr("items_per_rep", 1.0), 1.0);
    out = values.get(event) / (reps * items);
    return true;
}

} // namespace

std::vector<CounterDelta>
compareCounter(const JsonValue &before, const JsonValue &after,
               PerfEvent event,
               const CounterDiffOptions &options)
{
    std::vector<CounterDelta> out;
    const JsonValue *before_list = before.find("benchmarks");
    if (!before_list || !before_list->isArray())
        return out;
    for (const JsonValue &record : before_list->items()) {
        if (!record.isObject())
            continue;
        const std::string name = record.stringOr("name", "?");
        const JsonValue *peer = findBenchmark(after, name);
        if (!peer)
            continue;
        CounterDelta delta;
        delta.name = name;
        delta.threshold = options.minRelative;
        double b = 0.0;
        double a = 0.0;
        if (!recordCounterPerOp(record, event, b) ||
            !recordCounterPerOp(*peer, event, a) || b <= 0.0) {
            delta.verdict = CounterDelta::Verdict::Skipped;
            out.push_back(std::move(delta));
            continue;
        }
        delta.beforePerOp = b;
        delta.afterPerOp = a;
        const double relative = (a - b) / b;
        if (relative > options.minRelative)
            delta.verdict = CounterDelta::Verdict::Regressed;
        else if (-relative > options.minRelative)
            delta.verdict = CounterDelta::Verdict::Improved;
        else
            delta.verdict = CounterDelta::Verdict::Similar;
        out.push_back(std::move(delta));
    }
    return out;
}

std::size_t
countCounterRegressions(const std::vector<CounterDelta> &deltas)
{
    std::size_t n = 0;
    for (const auto &delta : deltas)
        n += delta.verdict == CounterDelta::Verdict::Regressed;
    return n;
}

std::string
formatCounterTable(const std::vector<CounterDelta> &deltas,
                   PerfEvent event)
{
    std::size_t width = 9;  // "benchmark"
    for (const auto &delta : deltas)
        width = std::max(width, delta.name.size());

    std::ostringstream os;
    os << "counter: " << perfEventName(event) << " per op\n";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-*s %16s %16s %9s %10s\n",
                  static_cast<int>(width), "benchmark", "before",
                  "after", "change", "verdict");
    os << line;
    for (const auto &delta : deltas) {
        char change[16] = "-";
        if (delta.verdict != CounterDelta::Verdict::Skipped &&
            delta.beforePerOp > 0.0) {
            std::snprintf(change, sizeof(change), "%+.1f%%",
                          (delta.ratio() - 1.0) * 100.0);
        }
        std::snprintf(line, sizeof(line),
                      "%-*s %16.2f %16.2f %9s %10s\n",
                      static_cast<int>(width),
                      delta.name.c_str(), delta.beforePerOp,
                      delta.afterPerOp, change,
                      counterVerdictName(delta.verdict));
        os << line;
    }
    return os.str();
}

bool
loadBenchFile(const std::string &path, JsonValue &out,
              std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonParseResult parsed = parseJson(buffer.str());
    if (!parsed.ok) {
        error = "'" + path + "': " + parsed.error;
        return false;
    }
    if (!parsed.value.isObject() ||
        !parsed.value.find("benchmarks")) {
        error = "'" + path +
                "': not a BENCH_*.json document (no "
                "\"benchmarks\" member)";
        return false;
    }
    out = std::move(parsed.value);
    return true;
}

bool
perfComparable(const JsonValue &before, const JsonValue &after,
               std::string &error)
{
    // Only refuse on fields both sides actually recorded; older
    // records without the metadata stay comparable (best effort).
    const double coresBefore = before.numberOr("host_cores", 0.0);
    const double coresAfter = after.numberOr("host_cores", 0.0);
    if (coresBefore > 0.0 && coresAfter > 0.0 &&
        coresBefore != coresAfter) {
        std::ostringstream os;
        os << "host_cores differ: before=" << coresBefore
           << " after=" << coresAfter;
        error = os.str();
        return false;
    }

    const JsonValue *before_list = before.find("benchmarks");
    if (!before_list || !before_list->isArray())
        return true;
    for (const JsonValue &record : before_list->items()) {
        if (!record.isObject())
            continue;
        const std::string name = record.stringOr("name", "?");
        const JsonValue *peer = findBenchmark(after, name);
        if (!peer)
            continue;
        for (const char *field :
             {"threads_requested", "threads_used"}) {
            const JsonValue *b = record.find(field);
            const JsonValue *a = peer->find(field);
            if (!b || !a || !b->isNumber() || !a->isNumber())
                continue;
            if (b->asNumber() != a->asNumber()) {
                std::ostringstream os;
                os << "benchmark '" << name << "' " << field
                   << " differ: before=" << b->asNumber()
                   << " after=" << a->asNumber();
                error = os.str();
                return false;
            }
        }
    }
    return true;
}

} // namespace uatm::obs
