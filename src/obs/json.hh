/**
 * @file
 * Minimal streaming JSON writer used by the observability layer
 * (stat dumps, Chrome trace files, run manifests).
 *
 * Deliberately tiny: no DOM, no parsing, just balanced emission
 * with correct escaping and locale-independent number formatting.
 * Misuse (value without key inside an object, unbalanced nesting)
 * trips UATM_ASSERT rather than producing broken output.
 */

#ifndef UATM_OBS_JSON_HH
#define UATM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace uatm::obs {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit the key of the next key/value pair (object scope). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(const std::string &v);

    /** Bool / integral / floating-point values. */
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    JsonWriter &
    value(T v)
    {
        if constexpr (std::is_same_v<T, bool>) {
            return rawValue(v ? "true" : "false");
        } else if constexpr (std::is_floating_point_v<T>) {
            return rawValue(formatNumber(static_cast<double>(v)));
        } else if constexpr (std::is_signed_v<T>) {
            return rawValue(std::to_string(
                static_cast<std::int64_t>(v)));
        } else {
            return rawValue(std::to_string(
                static_cast<std::uint64_t>(v)));
        }
    }

    /** Emit pre-rendered JSON (e.g. a nested document) verbatim. */
    JsonWriter &rawValue(std::string_view json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    keyValue(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Finished document; asserts the nesting is balanced. */
    const std::string &str() const;

    /** Quote and escape @p s as a JSON string literal. */
    static std::string escape(std::string_view s);

    /** Locale-independent rendering; non-finite becomes null. */
    static std::string formatNumber(double v);

  private:
    std::string out_;
    std::vector<char> stack_;      ///< 'o' = object, 'a' = array
    std::vector<bool> first_;      ///< no comma needed yet per level
    bool pendingKey_ = false;      ///< key() emitted, value expected

    void beforeValue();
};

} // namespace uatm::obs

#endif // UATM_OBS_JSON_HH
