/**
 * @file
 * Minimal JSON support used by the observability layer (stat
 * dumps, Chrome trace files, run manifests, benchmark records).
 *
 * Two halves:
 *
 *  - JsonWriter: streaming emission with correct escaping and
 *    locale-independent number formatting.  Misuse (value without
 *    key inside an object, unbalanced nesting) trips UATM_ASSERT
 *    rather than producing broken output.
 *  - parseJson/JsonValue: a strict recursive-descent reader for
 *    the documents the writer produces (and any other RFC 8259
 *    text), powering tools/perf_diff and round-trip tests.  Parse
 *    failures are reported with a byte offset, never an assert —
 *    input files are user data.
 */

#ifndef UATM_OBS_JSON_HH
#define UATM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace uatm::obs {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit the key of the next key/value pair (object scope). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(const std::string &v);

    /** Bool / integral / floating-point values. */
    template <typename T,
              typename = std::enable_if_t<std::is_arithmetic_v<T>>>
    JsonWriter &
    value(T v)
    {
        if constexpr (std::is_same_v<T, bool>) {
            return rawValue(v ? "true" : "false");
        } else if constexpr (std::is_floating_point_v<T>) {
            return rawValue(formatNumber(static_cast<double>(v)));
        } else if constexpr (std::is_signed_v<T>) {
            return rawValue(std::to_string(
                static_cast<std::int64_t>(v)));
        } else {
            return rawValue(std::to_string(
                static_cast<std::uint64_t>(v)));
        }
    }

    /** Emit pre-rendered JSON (e.g. a nested document) verbatim. */
    JsonWriter &rawValue(std::string_view json);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    keyValue(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Finished document; asserts the nesting is balanced. */
    const std::string &str() const;

    /** Quote and escape @p s as a JSON string literal. */
    static std::string escape(std::string_view s);

    /** Locale-independent rendering; non-finite becomes null. */
    static std::string formatNumber(double v);

  private:
    std::string out_;
    std::vector<char> stack_;      ///< 'o' = object, 'a' = array
    std::vector<bool> first_;      ///< no comma needed yet per level
    bool pendingKey_ = false;      ///< key() emitted, value expected

    void beforeValue();
};

/**
 * One parsed JSON value.  Accessors assert the kind matches (a
 * schema violation in our own files is a bug worth a loud stop);
 * use the kind predicates or find() for optional fields.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array elements (asserts isArray()). */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order (asserts isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Array length / object member count; 0 otherwise. */
    std::size_t size() const;

    /** Object member by key; nullptr when absent or not an
     *  object.  The first member wins on duplicate keys. */
    const JsonValue *find(const std::string &key) const;

    /** Object member by key; asserts presence. */
    const JsonValue &at(const std::string &key) const;

    /** Array element by index; asserts bounds. */
    const JsonValue &at(std::size_t index) const;

    /** Number if the member exists and is one, else @p fallback. */
    double numberOr(const std::string &key, double fallback) const;

    /** String if the member exists and is one, else @p fallback. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Outcome of parseJson(): a value or a positioned error. */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;
    std::string error;  ///< "byte N: message" when !ok

    explicit operator bool() const { return ok; }
};

/**
 * Parse one JSON document (leading/trailing whitespace allowed,
 * nothing else may follow).  Strict RFC 8259: no comments, no
 * trailing commas; \uXXXX escapes (including surrogate pairs)
 * decode to UTF-8.  Nesting deeper than 256 levels is rejected.
 */
JsonParseResult parseJson(std::string_view text);

} // namespace uatm::obs

#endif // UATM_OBS_JSON_HH
