/**
 * @file
 * Scoped wall-clock profiling.
 *
 * UATM_PROFILE_SCOPE("engine.run") drops an RAII timer into a
 * scope; elapsed wall-clock seconds feed a named RunningStats in
 * the process-wide ProfileRegistry.  Profiling where our *own*
 * evaluation time goes is what makes fast-analytical-model work
 * (à la Gysi et al.) actionable.
 *
 * Disabled by default: the timer constructor is an inline check of
 * one cached bool, so scattering scopes over hot paths is free
 * until UATM_PROFILE is set in the environment (which also dumps
 * the profile to stderr at exit) or setEnabled(true) is called.
 *
 * UATM_PERF additionally arms hardware counter deltas per scope:
 * each timed interval also records cycles/instructions/cache-miss
 * (etc.) deltas from the calling thread's PerfCounterGroup.  On
 * hosts where perf_event_open is forbidden the scopes silently
 * fall back to wall-clock only.  UATM_PERF implies UATM_PROFILE.
 */

#ifndef UATM_OBS_PROFILE_HH
#define UATM_OBS_PROFILE_HH

#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/perf_counters.hh"
#include "util/stats.hh"

namespace uatm::obs {

class StatRegistry;

class ProfileRegistry
{
  public:
    /** The process-wide registry (UATM_PROFILE arms it). */
    static ProfileRegistry &instance();

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** Per-scope hardware counter collection (UATM_PERF). */
    bool countersEnabled() const { return counters_; }
    void setCountersEnabled(bool on) { counters_ = on; }

    /** Fold one timed interval into the named scope. */
    void record(const char *name, double seconds);

    /** Fold one interval's counter deltas into the scope. */
    void recordCounters(const char *name,
                        const PerfCounterValues &delta);

    /** (scope name, timing summary) in first-seen order. */
    std::vector<std::pair<std::string, RunningStats>>
    snapshot() const;

    /** Per-scope per-event counter summaries. */
    struct ScopeCounters
    {
        /** Bit (1 << event) per event with samples. */
        std::uint32_t mask = 0;
        std::array<RunningStats, kPerfEventCount> stats{};
    };

    /** (scope name, counters) for scopes that recorded any. */
    std::vector<std::pair<std::string, ScopeCounters>>
    counterSnapshot() const;

    /** Register every scope as prefix.<name> distributions. */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

    /** Aligned human-readable dump (seconds). */
    std::string format() const;

    /** Forget all recorded scopes. */
    void clear();

  private:
    ProfileRegistry();

    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, RunningStats>> scopes_;
    std::vector<std::pair<std::string, ScopeCounters>>
        counterScopes_;
    bool enabled_ = false;
    bool counters_ = false;
};

/**
 * RAII timer; use through UATM_PROFILE_SCOPE rather than
 * directly.  Captures nothing when profiling is disabled.
 */
class ScopedTimer
{
  public:
    explicit
    ScopedTimer(const char *name)
        : name_(name),
          active_(ProfileRegistry::instance().enabled())
    {
        if (!active_)
            return;
        if (ProfileRegistry::instance().countersEnabled()) {
            PerfCounterGroup &group = threadPerfCounters();
            if (group.available()) {
                counters_ = true;
                begin_ = group.read();
            }
        }
        start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (!active_)
            return;
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        if (counters_) {
            const PerfCounterValues delta = scaleDelta(
                begin_, threadPerfCounters().read());
            if (delta.available) {
                ProfileRegistry::instance().recordCounters(
                    name_, delta);
            }
        }
        ProfileRegistry::instance().record(
            name_,
            std::chrono::duration<double>(elapsed).count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const char *name_;
    bool active_;
    bool counters_ = false;
    std::chrono::steady_clock::time_point start_;
    PerfReading begin_;
};

#define UATM_OBS_CONCAT2(a, b) a##b
#define UATM_OBS_CONCAT(a, b) UATM_OBS_CONCAT2(a, b)

/** Time the enclosing scope under @p name (a string literal). */
#define UATM_PROFILE_SCOPE(name)                                  \
    ::uatm::obs::ScopedTimer UATM_OBS_CONCAT(uatmProfileScope_,   \
                                             __LINE__)(name)

} // namespace uatm::obs

#endif // UATM_OBS_PROFILE_HH
