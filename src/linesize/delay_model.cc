/**
 * @file
 * Implementation of the line-fill delay model.
 */

#include "linesize/delay_model.hh"

#include <sstream>

#include "util/logging.hh"

namespace uatm {

void
LineDelayModel::validate() const
{
    if (c < 1.0)
        fatal("latency c must be at least the one-cycle hit time");
    if (beta <= 0.0)
        fatal("bus speed beta must be positive");
    if (busWidth <= 0.0)
        fatal("bus width must be positive");
}

double
LineDelayModel::fillTime(double line_bytes) const
{
    UATM_ASSERT(line_bytes >= busWidth,
                "line must be at least one bus transfer");
    return c + beta * line_bytes / busWidth;
}

double
LineDelayModel::meanMemoryDelay(double miss_ratio,
                                double line_bytes) const
{
    UATM_ASSERT(miss_ratio >= 0.0 && miss_ratio <= 1.0,
                "miss ratio must be in [0, 1]");
    // Eq. 15: (1 - HR)(c + beta L/D) + HR * 1.
    return miss_ratio * fillTime(line_bytes) + (1.0 - miss_ratio);
}

double
LineDelayModel::smithObjective(double miss_ratio,
                               double line_bytes) const
{
    UATM_ASSERT(miss_ratio >= 0.0 && miss_ratio <= 1.0,
                "miss ratio must be in [0, 1]");
    // Eq. 16 with c' = c - 1.
    return miss_ratio * (smithLatency() + beta * line_bytes /
                                              busWidth);
}

LineDelayModel
LineDelayModel::fromNanoseconds(double latency_ns, double ns_per_byte,
                                double cpu_cycle_ns,
                                double bus_width_bytes)
{
    UATM_ASSERT(cpu_cycle_ns > 0.0, "CPU cycle time must be positive");
    LineDelayModel m;
    // Latency is normalised and carries the one-cycle hit on top.
    m.c = latency_ns / cpu_cycle_ns + 1.0;
    m.beta = ns_per_byte * bus_width_bytes / cpu_cycle_ns;
    m.busWidth = bus_width_bytes;
    m.validate();
    return m;
}

std::string
LineDelayModel::describe() const
{
    std::ostringstream os;
    os << "c'=" << smithLatency() << " beta=" << beta << " D="
       << busWidth << "B";
    return os.str();
}

} // namespace uatm
