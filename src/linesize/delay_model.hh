/**
 * @file
 * Line-fill delay model used by the line-size study (paper
 * Sec. 5.4): fill time = c + beta * (L/D), with latency c and bus
 * speed beta normalised to the CPU hit cycle, exactly as in Smith's
 * line-size paper.
 */

#ifndef UATM_LINESIZE_DELAY_MODEL_HH
#define UATM_LINESIZE_DELAY_MODEL_HH

#include <string>

namespace uatm {

/**
 * Normalised memory-delay parameters.
 *
 * @note c includes the one-cycle cache hit time, so Smith's
 *       latency constant is c' = c - 1 (paper, after Eq. 16).
 */
struct LineDelayModel
{
    /** Access latency in CPU cycles (includes the hit cycle). */
    double c = 7.0;

    /** Bus transfer time in CPU cycles per D-byte bus cycle. */
    double beta = 2.0;

    /** Bus width D in bytes. */
    double busWidth = 4.0;

    void validate() const;

    /** Time to fill an L-byte line: c + beta * L / D. */
    double fillTime(double line_bytes) const;

    /** Smith's latency constant c' = c - 1. */
    double smithLatency() const { return c - 1.0; }

    /** Mean memory delay per reference at miss ratio MR (Eq. 15):
     *  MR * fillTime(L) + (1 - MR) * 1. */
    double meanMemoryDelay(double miss_ratio,
                           double line_bytes) const;

    /** Smith's objective (Eq. 16): MR * (c' + beta * L / D). */
    double smithObjective(double miss_ratio, double line_bytes) const;

    /**
     * Build from physical parameters: Delay(ns) = latency_ns +
     * ns_per_byte * bytes, normalised by the CPU cycle time.  These
     * are the "Delay = 360ns + 15ns/byte" forms of Figure 6.
     */
    static LineDelayModel fromNanoseconds(double latency_ns,
                                          double ns_per_byte,
                                          double cpu_cycle_ns,
                                          double bus_width_bytes);

    std::string describe() const;
};

} // namespace uatm

#endif // UATM_LINESIZE_DELAY_MODEL_HH
