/**
 * @file
 * Implementation of the miss-ratio tables.
 */

#include "linesize/miss_table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uatm {

MissRatioTable::MissRatioTable(std::string name,
                               std::vector<LinePoint> points)
    : name_(std::move(name)), points_(std::move(points))
{
    if (points_.size() < 2)
        fatal("miss-ratio table '", name_,
              "' needs at least two line sizes");
    std::sort(points_.begin(), points_.end(),
              [](const LinePoint &a, const LinePoint &b) {
                  return a.lineBytes < b.lineBytes;
              });
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].lineBytes == points_[i - 1].lineBytes)
            fatal("duplicate line size ", points_[i].lineBytes,
                  " in table '", name_, "'");
    }
    for (const auto &p : points_) {
        if (p.missRatio < 0.0 || p.missRatio > 1.0)
            fatal("miss ratio out of [0, 1] in table '", name_, "'");
    }
}

double
MissRatioTable::missRatio(std::uint32_t line_bytes) const
{
    for (const auto &p : points_) {
        if (p.lineBytes == line_bytes)
            return p.missRatio;
    }
    fatal("table '", name_, "' has no line size ", line_bytes);
}

bool
MissRatioTable::has(std::uint32_t line_bytes) const
{
    return std::any_of(points_.begin(), points_.end(),
                       [line_bytes](const LinePoint &p) {
                           return p.lineBytes == line_bytes;
                       });
}

std::vector<std::uint32_t>
MissRatioTable::lineSizes() const
{
    std::vector<std::uint32_t> sizes;
    sizes.reserve(points_.size());
    for (const auto &p : points_)
        sizes.push_back(p.lineBytes);
    return sizes;
}

MissRatioTable
MissRatioTable::fromSweep(std::string name,
                          const std::vector<SweepPoint> &sweep)
{
    std::vector<LinePoint> points;
    points.reserve(sweep.size());
    for (const auto &s : sweep) {
        points.push_back(LinePoint{
            static_cast<std::uint32_t>(s.value), s.missRatio});
    }
    return MissRatioTable(std::move(name), std::move(points));
}

MissRatioTable
MissRatioTable::designTarget8K()
{
    return MissRatioTable("design-target 8K",
                          {
                              LinePoint{8, 0.085},
                              LinePoint{16, 0.055},
                              LinePoint{32, 0.038},
                              LinePoint{64, 0.031},
                              LinePoint{128, 0.029},
                          });
}

MissRatioTable
MissRatioTable::designTarget16K()
{
    return MissRatioTable("design-target 16K",
                          {
                              LinePoint{8, 0.070},
                              LinePoint{16, 0.042},
                              LinePoint{32, 0.026},
                              LinePoint{64, 0.019},
                              LinePoint{128, 0.016},
                          });
}

} // namespace uatm
