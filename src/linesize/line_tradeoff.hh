/**
 * @file
 * The line-size arm of the tradeoff methodology (paper Sec. 5.4):
 * the hit-ratio difference a larger line must earn (Eqs. 11-14),
 * the reduced-memory-delay selector (Eqs. 17-19), and its proven
 * agreement with Smith's optimal-line criterion (Eqs. 15/16).
 */

#ifndef UATM_LINESIZE_LINE_TRADEOFF_HH
#define UATM_LINESIZE_LINE_TRADEOFF_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "linesize/delay_model.hh"
#include "linesize/miss_table.hh"

namespace uatm {

/**
 * Eq. 13's miss-count ratio between line sizes at equal execution
 * time: r = ((1+alpha0)(c + (L0/D) beta) - 1) /
 *           ((1+alpha1)(c + (L1/D) beta) - 1).
 * r < 1 when L1 > L0 (each larger-line miss costs more).
 */
double lineMissFactor(const LineDelayModel &model, double line0,
                      double line1, double alpha0 = 0.0,
                      double alpha1 = 0.0);

/**
 * Eq. 14: the minimum hit-ratio advantage dEHR the larger line L1
 * must deliver over L0 just to break even, given L0's miss ratio.
 */
double requiredHitRatioGain(const LineDelayModel &model, double line0,
                            double line1, double base_miss_ratio,
                            double alpha0 = 0.0, double alpha1 = 0.0);

/**
 * Eq. 19: the reduced memory delay per reference of using L1
 * instead of L0:
 * (dMR - dEMR)(c - 1 + beta L1/D), positive when L1 wins.
 */
double reducedDelay(const MissRatioTable &table,
                    const LineDelayModel &model, std::uint32_t line0,
                    std::uint32_t line1);

/** Smith's optimum (Eq. 16): argmin of MR_L (c' + beta L/D). */
std::uint32_t smithOptimalLine(const MissRatioTable &table,
                               const LineDelayModel &model);

/** Minimum-mean-memory-delay optimum (Eq. 15); identical to
 *  Smith's because hit cycles are common (paper's argument). */
std::uint32_t meanDelayOptimalLine(const MissRatioTable &table,
                                   const LineDelayModel &model);

/**
 * Eq. 18/19 selector: argmax of the reduced delay over lines
 * larger than @p line0 (the base); returns @p line0 when no larger
 * line has a positive reduction.
 */
std::uint32_t tradeoffOptimalLine(const MissRatioTable &table,
                                  const LineDelayModel &model,
                                  std::uint32_t line0);

/** One sample of a Figure 6 panel. */
struct ReducedDelayPoint
{
    double beta;
    std::uint32_t lineBytes;
    double reducedDelay;
};

/**
 * Sweep beta and evaluate Eq. 19 for every table line larger than
 * @p line0 — the series of one Figure 6 panel.
 */
std::vector<ReducedDelayPoint>
sweepReducedDelay(const MissRatioTable &table, LineDelayModel model,
                  std::uint32_t line0,
                  const std::vector<double> &betas);

/**
 * The beta interval over which switching from @p line0 to @p line1
 * has positive reduced delay (Sec. 5.4.2's "beneficial range of
 * bus speeds"); nullopt when it never does within [beta_lo,
 * beta_hi].
 */
std::optional<std::pair<double, double>>
beneficialBetaRange(const MissRatioTable &table, LineDelayModel model,
                    std::uint32_t line0, std::uint32_t line1,
                    double beta_lo, double beta_hi);

} // namespace uatm

#endif // UATM_LINESIZE_LINE_TRADEOFF_HH
