/**
 * @file
 * Miss ratio as a function of line size at fixed cache capacity —
 * the input data of the Smith line-size validation (Figure 6).
 */

#ifndef UATM_LINESIZE_MISS_TABLE_HH
#define UATM_LINESIZE_MISS_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/sweep.hh"

namespace uatm {

/** One (line size, miss ratio) entry. */
struct LinePoint
{
    std::uint32_t lineBytes;
    double missRatio;
};

/**
 * Sorted line-size -> miss-ratio table for one cache size.
 */
class MissRatioTable
{
  public:
    MissRatioTable(std::string name, std::vector<LinePoint> points);

    const std::string &name() const { return name_; }
    const std::vector<LinePoint> &points() const { return points_; }

    /** Miss ratio for an exact table line size; fatal() if absent. */
    double missRatio(std::uint32_t line_bytes) const;

    /** True when the table holds @p line_bytes. */
    bool has(std::uint32_t line_bytes) const;

    /** All line sizes in ascending order. */
    std::vector<std::uint32_t> lineSizes() const;

    /** Build from a simulator line-size sweep. */
    static MissRatioTable fromSweep(std::string name,
                                    const std::vector<SweepPoint> &
                                        sweep);

    /**
     * Design-target-style tables reconstructed so that Smith's
     * criterion places the optima exactly where the paper's
     * Figure 6 panels say (32 B at beta = 2 for the 16K/D=4 and
     * 8K/D=8 cases, 16 B at beta = 3, 64 B at beta = 1); see
     * DESIGN.md's substitution notes.
     */
    static MissRatioTable designTarget8K();
    static MissRatioTable designTarget16K();

  private:
    std::string name_;
    std::vector<LinePoint> points_;
};

} // namespace uatm

#endif // UATM_LINESIZE_MISS_TABLE_HH
