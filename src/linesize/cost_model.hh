/**
 * @file
 * Cache silicon-cost model (Alpert & Flynn, the paper's reference
 * [6]): a larger line size reduces the overhead of address tags
 * and control state, making the cache more cost-effective per
 * byte.  Combined with the delay model this answers the question
 * the paper raises in Sec. 2: optimising around hit ratio alone
 * "may not produce a cost-effective system".
 */

#ifndef UATM_LINESIZE_COST_MODEL_HH
#define UATM_LINESIZE_COST_MODEL_HH

#include <cstdint>
#include <string>

#include "cache/config.hh"
#include "linesize/delay_model.hh"
#include "linesize/miss_table.hh"

namespace uatm {

/**
 * Bit-level area model of a set-associative cache.
 */
struct CacheAreaModel
{
    /** Physical address width in bits. */
    std::uint32_t addressBits = 32;

    /** State bits per line (valid + dirty by default). */
    std::uint32_t stateBitsPerLine = 2;

    /** Replacement bits per line (1 approximates LRU/PLRU cost for
     *  small associativity). */
    std::uint32_t replacementBitsPerLine = 1;

    void validate() const;

    /** Tag bits per line for the given geometry. */
    std::uint32_t tagBits(const CacheConfig &config) const;

    /** Data bits of the whole cache. */
    std::uint64_t dataBits(const CacheConfig &config) const;

    /** Tag + state + replacement bits of the whole cache. */
    std::uint64_t overheadBits(const CacheConfig &config) const;

    /** Total storage bits. */
    std::uint64_t totalBits(const CacheConfig &config) const;

    /** overhead / total, the Alpert-Flynn waste fraction. */
    double overheadFraction(const CacheConfig &config) const;
};

/** One line size's standing in the cost-effectiveness ranking. */
struct CostEffectivenessPoint
{
    std::uint32_t lineBytes = 0;
    double meanMemoryDelay = 0.0; ///< Eq. 15 at this line size
    std::uint64_t totalBits = 0;  ///< silicon for the same capacity
    double overheadFraction = 0.0;
    /** delay * bits: lower is better (latency-area product). */
    double delayAreaProduct = 0.0;
};

/**
 * Evaluate every line size of @p table at fixed capacity: mean
 * memory delay (Eq. 15) against silicon cost.  The argmin of the
 * delay-area product is the Alpert-Flynn cost-effective choice; it
 * is never smaller than Smith's pure-delay optimum.
 */
std::vector<CostEffectivenessPoint>
costEffectivenessSweep(const MissRatioTable &table,
                       const LineDelayModel &delay,
                       const CacheAreaModel &area,
                       CacheConfig geometry);

/** The line size minimising the delay-area product. */
std::uint32_t costEffectiveLine(const MissRatioTable &table,
                                const LineDelayModel &delay,
                                const CacheAreaModel &area,
                                CacheConfig geometry);

} // namespace uatm

#endif // UATM_LINESIZE_COST_MODEL_HH
