/**
 * @file
 * Implementation of the line-size tradeoff.
 */

#include "linesize/line_tradeoff.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace uatm {

double
lineMissFactor(const LineDelayModel &model, double line0,
               double line1, double alpha0, double alpha1)
{
    model.validate();
    UATM_ASSERT(alpha0 >= 0.0 && alpha1 >= 0.0,
                "flush ratios must be non-negative");
    const double a = (1.0 + alpha0) * model.fillTime(line0) - 1.0;
    const double b = (1.0 + alpha1) * model.fillTime(line1) - 1.0;
    if (a <= 0.0 || b <= 0.0)
        fatal("per-miss cost must exceed the hit cycle for Eq. 13");
    return a / b;
}

double
requiredHitRatioGain(const LineDelayModel &model, double line0,
                     double line1, double base_miss_ratio,
                     double alpha0, double alpha1)
{
    UATM_ASSERT(base_miss_ratio >= 0.0 && base_miss_ratio <= 1.0,
                "miss ratio must be in [0, 1]");
    const double r =
        lineMissFactor(model, line0, line1, alpha0, alpha1);
    // Eq. 14: dEHR = (1 - r)/(s + 1) with 1/(s+1) = MR of the base.
    return (1.0 - r) * base_miss_ratio;
}

double
reducedDelay(const MissRatioTable &table, const LineDelayModel &model,
             std::uint32_t line0, std::uint32_t line1)
{
    const double mr0 = table.missRatio(line0);
    const double mr1 = table.missRatio(line1);
    // dMR is positive when the larger line actually misses less.
    const double d_mr = mr0 - mr1;
    const double d_emr = requiredHitRatioGain(
        model, static_cast<double>(line0),
        static_cast<double>(line1), mr0);
    // Eq. 19: the weight is Smith's cost of line1.
    const double weight = model.smithLatency() +
                          model.beta * static_cast<double>(line1) /
                              model.busWidth;
    return (d_mr - d_emr) * weight;
}

std::uint32_t
smithOptimalLine(const MissRatioTable &table,
                 const LineDelayModel &model)
{
    std::uint32_t best_line = 0;
    double best = std::numeric_limits<double>::infinity();
    for (const auto &p : table.points()) {
        const double objective = model.smithObjective(
            p.missRatio, static_cast<double>(p.lineBytes));
        if (objective < best) {
            best = objective;
            best_line = p.lineBytes;
        }
    }
    UATM_ASSERT(best_line != 0, "empty miss-ratio table");
    return best_line;
}

std::uint32_t
meanDelayOptimalLine(const MissRatioTable &table,
                     const LineDelayModel &model)
{
    std::uint32_t best_line = 0;
    double best = std::numeric_limits<double>::infinity();
    for (const auto &p : table.points()) {
        const double delay = model.meanMemoryDelay(
            p.missRatio, static_cast<double>(p.lineBytes));
        if (delay < best) {
            best = delay;
            best_line = p.lineBytes;
        }
    }
    UATM_ASSERT(best_line != 0, "empty miss-ratio table");
    return best_line;
}

std::uint32_t
tradeoffOptimalLine(const MissRatioTable &table,
                    const LineDelayModel &model, std::uint32_t line0)
{
    UATM_ASSERT(table.has(line0), "base line size ", line0,
                " is not in the table");
    std::uint32_t best_line = line0;
    double best = 0.0;
    for (const auto &p : table.points()) {
        if (p.lineBytes <= line0)
            continue;
        const double reduction =
            reducedDelay(table, model, line0, p.lineBytes);
        if (reduction > best) {
            best = reduction;
            best_line = p.lineBytes;
        }
    }
    return best_line;
}

std::vector<ReducedDelayPoint>
sweepReducedDelay(const MissRatioTable &table, LineDelayModel model,
                  std::uint32_t line0,
                  const std::vector<double> &betas)
{
    std::vector<ReducedDelayPoint> points;
    for (double beta : betas) {
        model.beta = beta;
        for (const auto &p : table.points()) {
            if (p.lineBytes <= line0)
                continue;
            points.push_back(ReducedDelayPoint{
                beta, p.lineBytes,
                reducedDelay(table, model, line0, p.lineBytes)});
        }
    }
    return points;
}

std::optional<std::pair<double, double>>
beneficialBetaRange(const MissRatioTable &table, LineDelayModel model,
                    std::uint32_t line0, std::uint32_t line1,
                    double beta_lo, double beta_hi)
{
    UATM_ASSERT(beta_lo > 0.0 && beta_hi > beta_lo,
                "invalid beta bracket");
    const int samples = 400;
    double lo = std::numeric_limits<double>::quiet_NaN();
    double hi = std::numeric_limits<double>::quiet_NaN();
    for (int i = 0; i <= samples; ++i) {
        const double beta =
            beta_lo + (beta_hi - beta_lo) * i / samples;
        model.beta = beta;
        const double v = reducedDelay(table, model, line0, line1);
        if (v > 0.0) {
            if (std::isnan(lo))
                lo = beta;
            hi = beta;
        }
    }
    if (std::isnan(lo))
        return std::nullopt;
    return std::make_pair(lo, hi);
}

} // namespace uatm
