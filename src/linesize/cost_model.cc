/**
 * @file
 * Implementation of the cache silicon-cost model.
 */

#include "linesize/cost_model.hh"

#include <bit>
#include <limits>

#include "util/logging.hh"

namespace uatm {

void
CacheAreaModel::validate() const
{
    if (addressBits < 16 || addressBits > 64)
        fatal("address width ", addressBits, " is not plausible");
}

std::uint32_t
CacheAreaModel::tagBits(const CacheConfig &config) const
{
    validate();
    okOrThrow(config.validate());
    const auto offset_bits = static_cast<std::uint32_t>(
        std::countr_zero(
            static_cast<std::uint64_t>(config.lineBytes)));
    const auto index_bits = static_cast<std::uint32_t>(
        std::countr_zero(config.numSets()));
    UATM_ASSERT(addressBits > offset_bits + index_bits,
                "address narrower than offset + index");
    return addressBits - offset_bits - index_bits;
}

std::uint64_t
CacheAreaModel::dataBits(const CacheConfig &config) const
{
    return config.sizeBytes * 8;
}

std::uint64_t
CacheAreaModel::overheadBits(const CacheConfig &config) const
{
    const std::uint64_t per_line = tagBits(config) +
                                   stateBitsPerLine +
                                   replacementBitsPerLine;
    return config.numLines() * per_line;
}

std::uint64_t
CacheAreaModel::totalBits(const CacheConfig &config) const
{
    return dataBits(config) + overheadBits(config);
}

double
CacheAreaModel::overheadFraction(const CacheConfig &config) const
{
    return static_cast<double>(overheadBits(config)) /
           static_cast<double>(totalBits(config));
}

std::vector<CostEffectivenessPoint>
costEffectivenessSweep(const MissRatioTable &table,
                       const LineDelayModel &delay,
                       const CacheAreaModel &area,
                       CacheConfig geometry)
{
    delay.validate();
    std::vector<CostEffectivenessPoint> points;
    for (const auto &entry : table.points()) {
        geometry.lineBytes = entry.lineBytes;
        okOrThrow(geometry.validate());
        CostEffectivenessPoint point;
        point.lineBytes = entry.lineBytes;
        point.meanMemoryDelay = delay.meanMemoryDelay(
            entry.missRatio,
            static_cast<double>(entry.lineBytes));
        point.totalBits = area.totalBits(geometry);
        point.overheadFraction = area.overheadFraction(geometry);
        point.delayAreaProduct =
            point.meanMemoryDelay *
            static_cast<double>(point.totalBits);
        points.push_back(point);
    }
    return points;
}

std::uint32_t
costEffectiveLine(const MissRatioTable &table,
                  const LineDelayModel &delay,
                  const CacheAreaModel &area, CacheConfig geometry)
{
    const auto points =
        costEffectivenessSweep(table, delay, area, geometry);
    std::uint32_t best_line = 0;
    double best = std::numeric_limits<double>::infinity();
    for (const auto &point : points) {
        if (point.delayAreaProduct < best) {
            best = point.delayAreaProduct;
            best_line = point.lineBytes;
        }
    }
    UATM_ASSERT(best_line != 0, "empty cost sweep");
    return best_line;
}

} // namespace uatm
