/**
 * @file
 * Minimal ASCII line-chart renderer.
 *
 * The paper's evaluation is figures; the benchmark binaries render
 * each figure's series both as a table and as a terminal chart so
 * the shape comparison (who wins, where the crossovers are) can be
 * eyeballed without external plotting tools.
 */

#ifndef UATM_UTIL_ASCII_CHART_HH
#define UATM_UTIL_ASCII_CHART_HH

#include <string>
#include <vector>

namespace uatm {

/**
 * One plotted series: a label, a glyph, and (x, y) samples.
 */
struct ChartSeries
{
    std::string label;
    char glyph = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/**
 * Renders multiple series on a shared grid with axis annotations.
 */
class AsciiChart
{
  public:
    /**
     * @param width  number of character columns in the plot area
     * @param height number of character rows in the plot area
     */
    AsciiChart(std::size_t width = 68, std::size_t height = 20);

    /** Add a series; x and y must be the same length. */
    void addSeries(ChartSeries series);

    /** Optional chart caption printed above the grid. */
    void setTitle(std::string title) { title_ = std::move(title); }
    void setXLabel(std::string label) { xlabel_ = std::move(label); }
    void setYLabel(std::string label) { ylabel_ = std::move(label); }

    /** Render the grid, legend and axis ranges. */
    std::string render() const;

  private:
    std::size_t width_;
    std::size_t height_;
    std::string title_;
    std::string xlabel_;
    std::string ylabel_;
    std::vector<ChartSeries> series_;
};

} // namespace uatm

#endif // UATM_UTIL_ASCII_CHART_HH
