/**
 * @file
 * Implementation of the command-line option parser.
 */

#include "util/options.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

Expected<std::vector<KeyValue>>
parseKeyValueList(std::string_view text)
{
    std::vector<KeyValue> pairs;
    if (text.empty())
        return pairs;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string_view::npos)
            end = text.size();
        const std::string_view item =
            text.substr(start, end - start);
        if (item.empty()) {
            return Status::parseError(
                "empty element in key=value list '",
                std::string(text), "'");
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            return Status::parseError(
                "'", std::string(item),
                "' is not of the form key=value");
        }
        if (eq == 0) {
            return Status::parseError(
                "empty key in '", std::string(item), "'");
        }
        pairs.push_back(KeyValue{std::string(item.substr(0, eq)),
                                 std::string(item.substr(eq + 1))});
        if (end == text.size())
            break;
        start = end + 1;
        if (start == text.size()) {
            return Status::parseError(
                "trailing comma in key=value list '",
                std::string(text), "'");
        }
    }
    return pairs;
}

OptionParser::OptionParser(std::string program_name,
                           std::string description)
    : programName_(std::move(program_name)),
      description_(std::move(description))
{
}

void
OptionParser::declare(const std::string &name, Kind kind,
                      const std::string &def, const std::string &help)
{
    UATM_ASSERT(!find(name), "option '", name, "' declared twice");
    options_.push_back(Option{name, kind, help, def});
}

void
OptionParser::addString(const std::string &name, const std::string &def,
                        const std::string &help)
{
    declare(name, Kind::String, def, help);
}

void
OptionParser::addInt(const std::string &name, std::int64_t def,
                     const std::string &help)
{
    declare(name, Kind::Int, std::to_string(def), help);
}

void
OptionParser::addDouble(const std::string &name, double def,
                        const std::string &help)
{
    std::ostringstream os;
    os << def;
    declare(name, Kind::Double, os.str(), help);
}

void
OptionParser::addFlag(const std::string &name, const std::string &help)
{
    declare(name, Kind::Flag, "0", help);
}

bool
OptionParser::parse(int argc, const char *const *argv)
{
    bool helped = false;
    const Status status = tryParse(argc, argv, &helped);
    if (!status.ok())
        fatal(status.message());
    return !helped;
}

Status
OptionParser::tryParse(int argc, const char *const *argv,
                       bool *helped)
{
    if (helped)
        *helped = false;
    std::vector<const Option *> seen;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            if (helped)
                *helped = true;
            return Status();
        }
        if (arg.rfind("--", 0) != 0) {
            return Status::invalidArgument(
                "unexpected positional argument '", arg, "'");
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Option *opt = find(arg);
        if (!opt) {
            return Status::invalidArgument(
                "unknown option '--", arg, "' (try --help)");
        }
        if (std::find(seen.begin(), seen.end(), opt) !=
            seen.end()) {
            return Status::invalidArgument(
                "option '--", arg,
                "' given more than once (neither value can win "
                "silently)");
        }
        seen.push_back(opt);
        if (has_value && value.empty()) {
            return Status::invalidArgument(
                "option '--", arg,
                "=' has an empty value (omit the option to keep "
                "its default)");
        }
        if (opt->kind == Kind::Flag) {
            opt->value = has_value ? value : "1";
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                return Status::invalidArgument(
                    "option '--", arg, "' needs a value");
            }
            value = argv[++i];
        }
        opt->value = value;
    }
    return Status();
}

std::string
OptionParser::getString(const std::string &name) const
{
    return require(name, Kind::String).value;
}

std::int64_t
OptionParser::getInt(const std::string &name) const
{
    const Option &opt = require(name, Kind::Int);
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(opt.value.c_str(), &end, 10);
    if (end == opt.value.c_str() || *end != '\0')
        fatal("option '--", name, "': '", opt.value,
              "' is not an integer");
    if (errno == ERANGE)
        fatal("option '--", name, "': '", opt.value,
              "' overflows a 64-bit integer");
    return v;
}

double
OptionParser::getDouble(const std::string &name) const
{
    const Option &opt = require(name, Kind::Double);
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(opt.value.c_str(), &end);
    if (end == opt.value.c_str() || *end != '\0')
        fatal("option '--", name, "': '", opt.value,
              "' is not a number");
    if (errno == ERANGE && (v >= HUGE_VAL || v <= -HUGE_VAL))
        fatal("option '--", name, "': '", opt.value,
              "' overflows a double");
    return v;
}

bool
OptionParser::getFlag(const std::string &name) const
{
    const Option &opt = require(name, Kind::Flag);
    std::string value = opt.value;
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    fatal("option '--", name, "': bad flag value '", opt.value,
          "' (expected 1/0/true/false/yes/no)");
}

Expected<std::vector<KeyValue>>
OptionParser::getKeyValueList(const std::string &name) const
{
    return parseKeyValueList(require(name, Kind::String).value);
}

std::string
OptionParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << programName_ << " [options]\n";
    if (!description_.empty())
        os << description_ << "\n";
    os << "\noptions:\n";
    for (const auto &opt : options_) {
        os << "  --" << opt.name;
        if (opt.kind != Kind::Flag)
            os << " <value>";
        os << "\n      " << opt.help;
        if (opt.kind != Kind::Flag)
            os << " (default: " << opt.value << ")";
        os << '\n';
    }
    return os.str();
}

OptionParser::Option *
OptionParser::find(const std::string &name)
{
    for (auto &opt : options_) {
        if (opt.name == name)
            return &opt;
    }
    return nullptr;
}

const OptionParser::Option &
OptionParser::require(const std::string &name, Kind kind) const
{
    for (const auto &opt : options_) {
        if (opt.name == name) {
            UATM_ASSERT(opt.kind == kind,
                        "option '", name, "' accessed with wrong type");
            return opt;
        }
    }
    panic("option '", name, "' was never declared");
}

} // namespace uatm
