/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for unusable user input
 * (bad configuration), warn()/inform() report conditions without
 * stopping execution.
 */

#ifndef UATM_UTIL_LOGGING_HH
#define UATM_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace uatm {

namespace detail {

/** Compose the final log line and write it to stderr. */
void emitMessage(std::string_view level, const std::string &msg);

/** Fold a pack of streamable arguments into one string. */
template <typename... Args>
std::string
foldMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happened that should never happen regardless of
 * what the user does, i.e. a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitMessage("panic", detail::foldMessage(
        std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with a failure status.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitMessage("fatal", detail::foldMessage(
        std::forward<Args>(args)...));
    std::exit(EXIT_FAILURE);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn", detail::foldMessage(
        std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info", detail::foldMessage(
        std::forward<Args>(args)...));
}

/**
 * Check a library invariant; panic with a description when violated.
 *
 * Unlike assert(), stays active in release builds: the analytical
 * model is cheap and correctness of its preconditions is the product.
 */
#define UATM_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::uatm::panic("assertion '", #cond, "' failed at ",         \
                          __FILE__, ":", __LINE__, ": ", __VA_ARGS__);  \
        }                                                               \
    } while (0)

} // namespace uatm

#endif // UATM_UTIL_LOGGING_HH
