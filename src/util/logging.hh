/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for unusable user input
 * (bad configuration), warn()/inform()/debug() report conditions
 * without stopping execution.
 *
 * Runtime filtering: UATM_LOG_LEVEL=quiet|warn|inform|debug (or
 * setLogLevel()) picks the highest severity that still prints;
 * the default is inform, so debug() is silent unless asked for.
 * panic()/fatal() always print.  UATM_LOG_TIMESTAMPS=1 (or
 * setLogTimestamps(true)) prefixes every line with an ISO-8601
 * UTC timestamp for correlating long bench runs with external
 * monitoring.
 */

#ifndef UATM_UTIL_LOGGING_HH
#define UATM_UTIL_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace uatm {

/**
 * Verbosity threshold, ordered so that a message prints when its
 * level is <= the configured threshold.  Quiet silences
 * everything except panic/fatal.
 */
enum class LogLevel : std::uint8_t
{
    Quiet = 0,
    Warn = 1,
    Inform = 2,
    Debug = 3,
};

/** Current threshold (initialised from UATM_LOG_LEVEL). */
LogLevel logLevel();

/** Override the threshold at runtime. */
void setLogLevel(LogLevel level);

/**
 * Parse "quiet"/"warn"/"inform"/"debug" (case-sensitive);
 * returns @p fallback with a warning for anything else.
 */
LogLevel logLevelFromString(std::string_view name,
                            LogLevel fallback = LogLevel::Inform);

const char *logLevelName(LogLevel level);

/** Whether log lines carry a UTC timestamp prefix. */
bool logTimestamps();
void setLogTimestamps(bool enabled);

namespace detail {

/** Compose the final log line and write it to stderr. */
void emitMessage(std::string_view level, const std::string &msg);

/** True when messages of @p level should print. */
bool levelEnabled(LogLevel level);

/** Fold a pack of streamable arguments into one string. */
template <typename... Args>
std::string
foldMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 *
 * Call when something happened that should never happen regardless of
 * what the user does, i.e. a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitMessage("panic", detail::foldMessage(
        std::forward<Args>(args)...));
    std::abort();
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with a failure status.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitMessage("fatal", detail::foldMessage(
        std::forward<Args>(args)...));
    std::exit(EXIT_FAILURE);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Warn))
        return;
    detail::emitMessage("warn", detail::foldMessage(
        std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Inform))
        return;
    detail::emitMessage("info", detail::foldMessage(
        std::forward<Args>(args)...));
}

/** Report developer-facing detail (off by default). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (!detail::levelEnabled(LogLevel::Debug))
        return;
    detail::emitMessage("debug", detail::foldMessage(
        std::forward<Args>(args)...));
}

/**
 * Check a library invariant; panic with a description when violated.
 *
 * Unlike assert(), stays active in release builds: the analytical
 * model is cheap and correctness of its preconditions is the product.
 */
#define UATM_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::uatm::panic("assertion '", #cond, "' failed at ",         \
                          __FILE__, ":", __LINE__, ": ", __VA_ARGS__);  \
        }                                                               \
    } while (0)

} // namespace uatm

#endif // UATM_UTIL_LOGGING_HH
