/**
 * @file
 * Small statistics accumulators used by the simulators and the
 * benchmark harness.
 */

#ifndef UATM_UTIL_STATS_HH
#define UATM_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace uatm {

/**
 * Streaming mean/variance/min/max accumulator (Welford's algorithm).
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const;
    double max() const;

    /** Population variance; zero for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi) with overflow/underflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first regular bin
     * @param hi upper edge of the last regular bin
     * @param bins number of regular bins, at least one
     */
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;

    /** Fraction of all samples (incl. under/overflow) in bin i. */
    double binFraction(std::size_t i) const;

    /**
     * Smallest x such that at least fraction q of samples are <= x,
     * linearly interpolated within the containing bin.
     */
    double quantile(double q) const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Named counter group: insertion-ordered key -> uint64 counters with
 * a formatted dump, mirroring a simulator stats block.
 */
class CounterGroup
{
  public:
    /** Add delta to the named counter, creating it at zero if new. */
    void increment(const std::string &name, std::uint64_t delta = 1);

    /** Value of the named counter; zero if it was never touched. */
    std::uint64_t value(const std::string &name) const;

    /** All counters in insertion order as (name, value). */
    std::vector<std::pair<std::string, std::uint64_t>> entries() const;

    /** Render a "name = value" block, one counter per line. */
    std::string format() const;

  private:
    std::vector<std::pair<std::string, std::uint64_t>> entries_;

    std::uint64_t *find(const std::string &name);
    const std::uint64_t *find(const std::string &name) const;
};

} // namespace uatm

#endif // UATM_UTIL_STATS_HH
