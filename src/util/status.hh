/**
 * @file
 * Recoverable-error substrate: Status and Expected<T>.
 *
 * The library's error contract (see DESIGN.md):
 *
 *  - Library code reports bad *input* (malformed traces, impossible
 *    geometries, unknown names) by returning Status / Expected<T>.
 *    It never calls fatal(): a single degenerate point in a 10k-point
 *    grid must degrade to an error row, not kill the process.
 *  - Constructors and deep call sites that cannot return a Status
 *    throw StatusError (okOrThrow); the exp::Runner catches it per
 *    point, and CLI mains catch it at the boundary.
 *  - fatal() survives only at CLI boundaries (examples/, bench/,
 *    option parsing) where exiting *is* the correct response.
 *  - panic()/UATM_ASSERT remain for library invariants — bugs, not
 *    inputs.
 */

#ifndef UATM_UTIL_STATUS_HH
#define UATM_UTIL_STATUS_HH

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace uatm {

/** Broad class of a recoverable error, for typed error cells. */
enum class ErrorCode : std::uint8_t
{
    Ok = 0,
    InvalidArgument, ///< a value outside the model's domain
    ParseError,      ///< malformed textual/binary input
    IoError,         ///< file open/read/write failure
    NotFound,        ///< unknown name, missing axis or table entry
    OutOfRange,      ///< numeric overflow or out-of-range value
    KernelError,     ///< a scenario kernel threw
    Unavailable,     ///< a bounded resource is full; retry later
};

/** "ok", "invalid_argument", "parse_error", ... */
const char *errorCodeName(ErrorCode code);

/**
 * The result of an operation that can fail recoverably: an OK tag
 * or an (ErrorCode, message) pair.  Cheap to move, comparable to
 * OK in a bool context via ok().
 */
class [[nodiscard]] Status
{
  public:
    /** OK. */
    Status() = default;

    template <typename... Args>
    static Status
    error(ErrorCode code, Args &&...args)
    {
        Status status;
        status.code_ = code;
        status.message_ =
            detail::foldMessage(std::forward<Args>(args)...);
        UATM_ASSERT(code != ErrorCode::Ok,
                    "an error status needs a non-OK code: ",
                    status.message_);
        return status;
    }

    template <typename... Args>
    static Status
    invalidArgument(Args &&...args)
    {
        return error(ErrorCode::InvalidArgument,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    parseError(Args &&...args)
    {
        return error(ErrorCode::ParseError,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    ioError(Args &&...args)
    {
        return error(ErrorCode::IoError,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    notFound(Args &&...args)
    {
        return error(ErrorCode::NotFound,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    outOfRange(Args &&...args)
    {
        return error(ErrorCode::OutOfRange,
                     std::forward<Args>(args)...);
    }

    template <typename... Args>
    static Status
    unavailable(Args &&...args)
    {
        return error(ErrorCode::Unavailable,
                     std::forward<Args>(args)...);
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok", or "<code name>: <message>". */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * A Status escaping as an exception, for constructors and call
 * chains that cannot return one.  The exp::Runner converts it back
 * into a per-point error row; example/bench mains convert it into
 * fatal() at the CLI boundary.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()),
          status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

/**
 * A value or the Status explaining why there is none.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        UATM_ASSERT(!status_.ok(),
                    "Expected built from an OK status has no value");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** OK when a value is present. */
    const Status &status() const { return status_; }

    /** The value; panic() (a caller bug) when there is none. */
    T &value() &
    {
        requireValue();
        return *value_;
    }
    const T &value() const &
    {
        requireValue();
        return *value_;
    }
    T &&value() &&
    {
        requireValue();
        return *std::move(value_);
    }

    T
    valueOr(T fallback) const &
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    void
    requireValue() const
    {
        if (!ok())
            panic("Expected::value() called on an error: ",
                  status_.toString());
    }

    std::optional<T> value_;
    Status status_;
};

/** Throw StatusError unless @p status is OK. */
inline void
okOrThrow(const Status &status)
{
    if (!status.ok())
        throw StatusError(status);
}

/** Unwrap @p expected, throwing StatusError on error. */
template <typename T>
T
okOrThrow(Expected<T> expected)
{
    if (!expected.ok())
        throw StatusError(expected.status());
    return std::move(expected).value();
}

/** CLI-boundary sink: fatal() unless @p status is OK. */
inline void
okOrFatal(const Status &status)
{
    if (!status.ok())
        fatal(status.message());
}

/** CLI-boundary unwrap: the value, or fatal() with the message. */
template <typename T>
T
valueOrFatal(Expected<T> expected)
{
    if (!expected.ok())
        fatal(expected.status().message());
    return std::move(expected).value();
}

} // namespace uatm

#endif // UATM_UTIL_STATUS_HH
