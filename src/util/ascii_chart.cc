/**
 * @file
 * Implementation of the ASCII line-chart renderer.
 */

#include "util/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace uatm {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height)
{
    UATM_ASSERT(width_ >= 10 && height_ >= 4,
                "chart grid is too small to be legible");
}

void
AsciiChart::addSeries(ChartSeries series)
{
    UATM_ASSERT(series.x.size() == series.y.size(),
                "series '", series.label, "' has mismatched x/y sizes");
    series_.push_back(std::move(series));
}

std::string
AsciiChart::render() const
{
    double xmin = std::numeric_limits<double>::infinity();
    double xmax = -xmin, ymin = xmin, ymax = -xmin;
    bool any = false;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.x.size(); ++i) {
            any = true;
            xmin = std::min(xmin, s.x[i]);
            xmax = std::max(xmax, s.x[i]);
            ymin = std::min(ymin, s.y[i]);
            ymax = std::max(ymax, s.y[i]);
        }
    }

    std::ostringstream os;
    if (!title_.empty())
        os << title_ << '\n';
    if (!any) {
        os << "(empty chart)\n";
        return os.str();
    }
    if (xmax == xmin)
        xmax = xmin + 1.0;
    if (ymax == ymin)
        ymax = ymin + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    auto plot = [&](double x, double y, char glyph) {
        const double fx = (x - xmin) / (xmax - xmin);
        const double fy = (y - ymin) / (ymax - ymin);
        auto col = static_cast<std::size_t>(
            std::lround(fx * static_cast<double>(width_ - 1)));
        auto row = static_cast<std::size_t>(
            std::lround((1.0 - fy) * static_cast<double>(height_ - 1)));
        grid[row][col] = glyph;
    };

    for (const auto &s : series_) {
        // Linear interpolation between adjacent samples so sparse
        // series still read as a line.
        for (std::size_t i = 0; i + 1 < s.x.size(); ++i) {
            const int steps = 24;
            for (int k = 0; k <= steps; ++k) {
                const double t =
                    static_cast<double>(k) / static_cast<double>(steps);
                plot(s.x[i] + t * (s.x[i + 1] - s.x[i]),
                     s.y[i] + t * (s.y[i + 1] - s.y[i]), s.glyph);
            }
        }
        if (s.x.size() == 1)
            plot(s.x[0], s.y[0], s.glyph);
    }

    if (!ylabel_.empty())
        os << ylabel_ << '\n';
    for (std::size_t r = 0; r < height_; ++r) {
        const double y =
            ymax - (ymax - ymin) * static_cast<double>(r) /
                       static_cast<double>(height_ - 1);
        os << (r % 4 == 0 ? TextTable::num(y, 2) : std::string())
           << std::string(
                  r % 4 == 0 ? std::max<std::size_t>(
                                   10 - TextTable::num(y, 2).size(), 0)
                             : 10,
                  ' ')
           << '|' << grid[r] << '\n';
    }
    os << std::string(10, ' ') << '+' << std::string(width_, '-')
       << '\n';
    os << std::string(11, ' ') << TextTable::num(xmin, 2)
       << std::string(width_ > 24 ? width_ - 16 : 1, ' ')
       << TextTable::num(xmax, 2) << '\n';
    if (!xlabel_.empty()) {
        os << std::string(11 + width_ / 2 - xlabel_.size() / 2, ' ')
           << xlabel_ << '\n';
    }
    os << "legend:";
    for (const auto &s : series_)
        os << "  [" << s.glyph << "] " << s.label;
    os << '\n';
    return os.str();
}

} // namespace uatm
