/**
 * @file
 * Implementation of the statistics accumulators.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

double
RunningStats::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    UATM_ASSERT(bins >= 1, "histogram needs at least one bin");
    UATM_ASSERT(hi > lo, "histogram range must be non-empty");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[idx];
}

double
Histogram::binLow(std::size_t i) const
{
    UATM_ASSERT(i < counts_.size(), "bin index out of range");
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::binFraction(std::size_t i) const
{
    UATM_ASSERT(i < counts_.size(), "bin index out of range");
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) /
           static_cast<double>(total_);
}

double
Histogram::quantile(double q) const
{
    UATM_ASSERT(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    if (total_ == 0)
        return lo_;
    const double target = q * static_cast<double>(total_);
    double cum = static_cast<double>(underflow_);
    if (cum >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double next = cum + static_cast<double>(counts_[i]);
        if (next >= target && counts_[i] > 0) {
            const double inside =
                (target - cum) / static_cast<double>(counts_[i]);
            return binLow(i) + inside * width_;
        }
        cum = next;
    }
    return lo_ + width_ * static_cast<double>(counts_.size());
}

void
CounterGroup::increment(const std::string &name, std::uint64_t delta)
{
    if (auto *slot = find(name)) {
        *slot += delta;
        return;
    }
    entries_.emplace_back(name, delta);
}

std::uint64_t
CounterGroup::value(const std::string &name) const
{
    const auto *slot = find(name);
    return slot ? *slot : 0;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterGroup::entries() const
{
    return entries_;
}

std::string
CounterGroup::format() const
{
    std::ostringstream os;
    std::size_t width = 0;
    for (const auto &[name, value] : entries_)
        width = std::max(width, name.size());
    for (const auto &[name, value] : entries_) {
        os << name << std::string(width - name.size(), ' ')
           << " = " << value << '\n';
    }
    return os.str();
}

std::uint64_t *
CounterGroup::find(const std::string &name)
{
    for (auto &[key, value] : entries_) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

const std::uint64_t *
CounterGroup::find(const std::string &name) const
{
    for (const auto &[key, value] : entries_) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

} // namespace uatm
