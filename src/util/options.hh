/**
 * @file
 * Tiny command-line option parser for the example binaries.
 *
 * Supports "--name value" and "--name=value" long options plus
 * "--help" generation.  Deliberately minimal: the examples need a
 * dozen numeric knobs, not a full CLI framework.
 */

#ifndef UATM_UTIL_OPTIONS_HH
#define UATM_UTIL_OPTIONS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace uatm {

/** One "key=value" element of a comma-separated list. */
struct KeyValue
{
    std::string key;
    std::string value;

    bool operator==(const KeyValue &) const = default;
};

/**
 * Parse "k1=v1,k2=v2,..." into ordered pairs.  An empty string is
 * the empty list.  Missing '=', empty keys, and empty elements
 * ("a=1,,b=2") are ParseError — reported via Status rather than
 * fatal() so "--workload=ycsb-a:theta=oops" can degrade to a typed
 * error at the caller's boundary of choice.  Values may be empty
 * ("hist=") and may not contain ',' (no escaping).
 */
Expected<std::vector<KeyValue>>
parseKeyValueList(std::string_view text);

/**
 * Declarative option table with typed accessors.
 */
class OptionParser
{
  public:
    /** @param program_name used in the --help banner. */
    explicit OptionParser(std::string program_name,
                          std::string description = "");

    /** Declare a string-valued option with a default. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare an integer option with a default. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);

    /** Declare a floating-point option with a default. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a boolean flag (default false; "--name" sets true). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.  On "--help", prints usage and returns false; the
     * caller should exit successfully.  Any parse problem —
     * unknown options, missing values, an option repeated on the
     * command line, or "--name=" with an empty value — is fatal().
     */
    bool parse(int argc, const char *const *argv);

    /**
     * parse() with typed errors instead of fatal(): returns an
     * InvalidArgument Status for unknown options, missing values,
     * repeated options (repetition is always ambiguous — neither
     * first- nor last-wins is obviously right, so both are
     * rejected), and "--name=" with an empty value (an explicitly
     * empty setting is indistinguishable from a typo; pass no
     * option to get the default).  helped is set when "--help"
     * was consumed (usage printed, OK returned): the caller
     * should exit successfully without reading values.
     */
    Status tryParse(int argc, const char *const *argv,
                    bool *helped = nullptr);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /**
     * A declared string option's value as a "k=v,..." list (see
     * parseKeyValueList).  Format errors come back as Status, like
     * getInt/getDouble range errors would be at a library boundary
     * — the CLI decides whether they are fatal.
     */
    Expected<std::vector<KeyValue>>
    getKeyValueList(const std::string &name) const;

    /** Render the --help text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Flag };

    struct Option
    {
        std::string name;
        Kind kind;
        std::string help;
        std::string value; // textual form, parsed on access
    };

    std::string programName_;
    std::string description_;
    std::vector<Option> options_;

    Option *find(const std::string &name);
    const Option &require(const std::string &name, Kind kind) const;
    void declare(const std::string &name, Kind kind,
                 const std::string &def, const std::string &help);
};

} // namespace uatm

#endif // UATM_UTIL_OPTIONS_HH
