/**
 * @file
 * CSV emission for benchmark series, so figures can be re-plotted
 * with external tooling.
 */

#ifndef UATM_UTIL_CSV_HH
#define UATM_UTIL_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace uatm {

/**
 * Streams rows of a CSV file; quoting is applied when a cell
 * contains a comma, quote, or newline.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row; cells are quoted as needed. */
    void writeRow(const std::vector<std::string> &cells);

    /** Convenience for purely numeric rows. */
    void writeNumericRow(const std::vector<double> &cells,
                         int precision = 6);

    /** Rows written so far, including the header. */
    std::size_t rowsWritten() const { return rows_; }

    /** Quote a single cell per RFC 4180 when required. */
    static std::string escape(const std::string &cell);

  private:
    std::ofstream out_;
    std::size_t rows_ = 0;
};

} // namespace uatm

#endif // UATM_UTIL_CSV_HH
