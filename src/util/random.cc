/**
 * @file
 * Implementation of the xoshiro256** generator and sampling helpers.
 */

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace uatm {

namespace {

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    UATM_ASSERT(bound > 0, "nextBelow requires a positive bound");
    // Lemire's nearly-divisionless unbiased method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = (*this)();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    UATM_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    if (span == 0)
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::size_t
Rng::nextStackDistance(std::size_t n, double decay)
{
    UATM_ASSERT(n > 0, "stack distance needs a non-empty stack");
    UATM_ASSERT(decay > 0.0 && decay < 1.0,
                "decay must lie strictly inside (0, 1)");
    // Inverse-CDF sample of the truncated geometric distribution:
    // P(i) ~ decay^i for i in [0, n).
    const double total = 1.0 - std::pow(decay, static_cast<double>(n));
    const double u = nextDouble() * total;
    const double raw = std::log(1.0 - u) / std::log(decay);
    auto idx = static_cast<std::size_t>(raw);
    return idx >= n ? n - 1 : idx;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    UATM_ASSERT(!weights.empty(), "weight vector must be non-empty");
    double total = 0.0;
    for (double w : weights) {
        UATM_ASSERT(w >= 0.0, "weights must be non-negative");
        total += w;
    }
    UATM_ASSERT(total > 0.0, "weights must not all be zero");
    double u = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    // Derive the child seed from fresh output; the SplitMix64
    // expansion in the constructor decorrelates the streams.
    return Rng((*this)());
}

} // namespace uatm
