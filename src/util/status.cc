/**
 * @file
 * Implementation of the recoverable-error substrate.
 */

#include "util/status.hh"

namespace uatm {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid_argument";
      case ErrorCode::ParseError:
        return "parse_error";
      case ErrorCode::IoError:
        return "io_error";
      case ErrorCode::NotFound:
        return "not_found";
      case ErrorCode::OutOfRange:
        return "out_of_range";
      case ErrorCode::KernelError:
        return "kernel_error";
      case ErrorCode::Unavailable:
        return "unavailable";
    }
    panic("unknown ErrorCode ", static_cast<int>(code));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    std::string out = errorCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace uatm
