/**
 * @file
 * Implementation of the CSV writer.
 */

#include "util/csv.hh"

#include <cstdio>

#include "util/logging.hh"

namespace uatm {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '", path, "'");
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        out_ << escape(cells[i]);
        if (i + 1 < cells.size())
            out_ << ',';
    }
    out_ << '\n';
    ++rows_;
}

void
CsvWriter::writeNumericRow(const std::vector<double> &cells,
                           int precision)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    char buf[64];
    for (double v : cells) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        text.emplace_back(buf);
    }
    writeRow(text);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

} // namespace uatm
