/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis.
 *
 * Uses xoshiro256** which is fast, has a 256-bit state, and gives
 * identical streams across platforms, so the synthetic SPEC92-like
 * traces that replace the paper's real traces are exactly
 * reproducible from a seed.
 */

#ifndef UATM_UTIL_RANDOM_HH
#define UATM_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace uatm {

/**
 * xoshiro256** generator (Blackman & Vigna).
 *
 * Satisfies the C++ UniformRandomBitGenerator requirements so it can
 * also feed <random> distributions if ever needed, but the member
 * helpers below are preferred: they are platform-stable.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 so that any 64-bit seed gives a good state. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound), bound > 0. Unbiased (Lemire). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p);

    /**
     * Geometric-ish stack-distance sample: returns an index in
     * [0, n) with P(i) proportional to decay^i.  Used by the
     * LRU-stack locality model.
     */
    std::size_t nextStackDistance(std::size_t n, double decay);

    /** Sample an index according to a discrete weight vector. */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /**
     * Fork a statistically independent child generator.  Each
     * synthetic program in a trace mix forks its own stream so
     * adding programs never perturbs the others.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace uatm

#endif // UATM_UTIL_RANDOM_HH
