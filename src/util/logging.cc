/**
 * @file
 * Implementation of the status-message helpers.
 */

#include "util/logging.hh"

#include <cstdio>
#include <mutex>

namespace uatm {
namespace detail {

namespace {

/// Serializes log lines from concurrent benchmark threads.
std::mutex logMutex;

} // namespace

void
emitMessage(std::string_view level, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(logMutex);
    std::fprintf(stderr, "uatm: %.*s: %s\n",
                 static_cast<int>(level.size()), level.data(),
                 msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace uatm
