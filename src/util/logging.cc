/**
 * @file
 * Implementation of the status-message helpers: level filtering,
 * optional timestamps, and serialized emission.
 */

#include "util/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace uatm {

namespace {

/// Serializes log lines from concurrent benchmark threads.
std::mutex logMutex;

LogLevel
initialLogLevel()
{
    if (const char *env = std::getenv("UATM_LOG_LEVEL");
        env && *env) {
        return logLevelFromString(env);
    }
    return LogLevel::Inform;
}

bool
initialTimestamps()
{
    const char *env = std::getenv("UATM_LOG_TIMESTAMPS");
    if (!env || !*env)
        return false;
    const std::string_view v(env);
    return v != "0" && v != "false" && v != "off" && v != "no";
}

std::atomic<LogLevel> &
levelSlot()
{
    static std::atomic<LogLevel> level{initialLogLevel()};
    return level;
}

std::atomic<bool> &
timestampSlot()
{
    static std::atomic<bool> stamps{initialTimestamps()};
    return stamps;
}

/** "2026-08-06T12:34:56Z " or "" when timestamps are off. */
std::string
timestampPrefix()
{
    if (!logTimestamps())
        return "";
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[40];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ ",
                  &tm_utc);
    return buf;
}

} // namespace

LogLevel
logLevel()
{
    return levelSlot().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelSlot().store(level, std::memory_order_relaxed);
}

LogLevel
logLevelFromString(std::string_view name, LogLevel fallback)
{
    if (name == "quiet")
        return LogLevel::Quiet;
    if (name == "warn")
        return LogLevel::Warn;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "debug")
        return LogLevel::Debug;
    detail::emitMessage(
        "warn", "unknown log level '" + std::string(name) +
                    "', using '" +
                    logLevelName(fallback) + "'");
    return fallback;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "quiet";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Inform:
        return "inform";
      case LogLevel::Debug:
        return "debug";
    }
    return "unknown";
}

bool
logTimestamps()
{
    return timestampSlot().load(std::memory_order_relaxed);
}

void
setLogTimestamps(bool enabled)
{
    timestampSlot().store(enabled, std::memory_order_relaxed);
}

namespace detail {

bool
levelEnabled(LogLevel level)
{
    return static_cast<std::uint8_t>(level) <=
           static_cast<std::uint8_t>(logLevel());
}

void
emitMessage(std::string_view level, const std::string &msg)
{
    const std::string stamp = timestampPrefix();
    std::lock_guard<std::mutex> guard(logMutex);
    std::fprintf(stderr, "%suatm: %.*s: %s\n", stamp.c_str(),
                 static_cast<int>(level.size()), level.data(),
                 msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace uatm
