/**
 * @file
 * Fixed-width text table rendering for the benchmark harness.
 *
 * Every table in EXPERIMENTS.md is produced through this class so
 * that paper-vs-measured rows line up and are diffable run to run.
 */

#ifndef UATM_UTIL_TABLE_HH
#define UATM_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace uatm {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t({"mu_m", "dHR (%)"});
 *   t.addRow({"2", "3.00"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with a header underline and column gutters. */
    std::string render() const;

    /** Render as CSV (no alignment padding). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace uatm

#endif // UATM_UTIL_TABLE_HH
