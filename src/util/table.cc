/**
 * @file
 * Implementation of the text-table renderer.
 */

#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    UATM_ASSERT(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    UATM_ASSERT(cells.size() == header_.size(),
                "row arity ", cells.size(), " != header arity ",
                header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c]
               << std::string(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    auto emit = [](std::ostringstream &os,
                   const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    std::ostringstream os;
    emit(os, header_);
    for (const auto &row : rows_)
        emit(os, row);
    return os.str();
}

} // namespace uatm
