/**
 * @file
 * Implementation of the YCSB-style key-value workload.
 */

#include "trace/ycsb.hh"

#include <cctype>
#include <cmath>

#include "util/logging.hh"

namespace uatm {

namespace {

/** zeta(n, theta) = sum_{i=1..n} 1/i^theta. */
double
zetaSum(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

/** FNV-1a over the 8 bytes of @p key, to scatter zipfian ranks. */
std::uint64_t
fnv64(std::uint64_t key)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (int i = 0; i < 8; ++i) {
        hash ^= (key >> (8 * i)) & 0xff;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

ZipfianSampler::ZipfianSampler(std::uint64_t items, double theta)
    : items_(items), theta_(theta), zetan_(zetaSum(items, theta))
{
    UATM_ASSERT(items_ > 0, "zipfian sampler needs >= 1 item");
    UATM_ASSERT(theta_ >= 0.0 && theta_ < 1.0,
                "zipfian theta must be in [0, 1), got ", theta_);
    refresh();
}

void
ZipfianSampler::refresh()
{
    // Gray et al.'s eta term; the n = 1 domain never consults it
    // (uz < 1 always holds when zetan == 1).
    const double n = static_cast<double>(items_);
    const double zeta2 = zetaSum(std::min<std::uint64_t>(items_, 2),
                                 theta_);
    const double denom = 1.0 - zeta2 / zetan_;
    eta_ = denom != 0.0
               ? (1.0 - std::pow(2.0 / n, 1.0 - theta_)) / denom
               : 0.0;
}

std::uint64_t
ZipfianSampler::next(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double alpha = 1.0 / (1.0 - theta_);
    const double n = static_cast<double>(items_);
    const auto rank = static_cast<std::uint64_t>(
        n * std::pow(eta_ * u - eta_ + 1.0, alpha));
    return rank >= items_ ? items_ - 1 : rank;
}

void
ZipfianSampler::grow()
{
    ++items_;
    zetan_ += 1.0 / std::pow(static_cast<double>(items_), theta_);
    refresh();
}

Expected<YcsbWorkload::Mix>
YcsbWorkload::parseMix(std::string_view name)
{
    if (name.size() == 1) {
        switch (std::tolower(static_cast<unsigned char>(name[0]))) {
          case 'a':
            return Mix::A;
          case 'b':
            return Mix::B;
          case 'c':
            return Mix::C;
          case 'd':
            return Mix::D;
          case 'e':
            return Mix::E;
          case 'f':
            return Mix::F;
          default:
            break;
        }
    }
    return Status::parseError("unknown YCSB mix '",
                              std::string(name),
                              "' (expected a..f)");
}

const char *
YcsbWorkload::mixName(Mix mix)
{
    switch (mix) {
      case Mix::A:
        return "a";
      case Mix::B:
        return "b";
      case Mix::C:
        return "c";
      case Mix::D:
        return "d";
      case Mix::E:
        return "e";
      case Mix::F:
        return "f";
    }
    return "?";
}

YcsbWorkload::YcsbWorkload(const Config &config, Rng rng)
    : config_(config), rng_(rng), initialRng_(rng),
      zipf_(config.records, config.theta),
      initialZipf_(zipf_), recordCount_(config.records)
{
    UATM_ASSERT(config_.records > 0, "ycsb needs >= 1 record");
    UATM_ASSERT(isValidAccessSize(config_.accessSize),
                "bad ycsb access size ", config_.accessSize);
    UATM_ASSERT(config_.recordBytes >= config_.accessSize,
                "ycsb record smaller than one access");
    UATM_ASSERT(config_.fieldsPerOp >= 1,
                "ycsb needs >= 1 field per op");
    UATM_ASSERT(config_.maxScanLen >= 1,
                "ycsb needs >= 1 record per scan");
}

std::uint64_t
YcsbWorkload::sampleKey()
{
    if (!config_.zipfian)
        return rng_.nextBelow(recordCount_);
    const std::uint64_t rank = zipf_.next(rng_);
    return fnv64(rank) % recordCount_;
}

Addr
YcsbWorkload::fieldAddr(std::uint64_t key,
                        std::uint32_t field) const
{
    const Addr record = config_.base + key * config_.recordBytes;
    const std::uint32_t offset =
        (field * config_.accessSize) % config_.recordBytes;
    return record + offset;
}

MemoryReference
YcsbWorkload::emit(Addr addr, RefKind kind)
{
    MemoryReference ref;
    ref.addr = addr;
    ref.size = static_cast<std::uint8_t>(config_.accessSize);
    ref.kind = kind;
    ref.gap = config_.gap.sample(rng_);
    return ref;
}

void
YcsbWorkload::beginOp()
{
    const std::uint64_t roll = rng_.nextBelow(100);
    switch (config_.mix) {
      case Mix::A:
        op_ = roll < 50 ? Op::Read : Op::Update;
        break;
      case Mix::B:
        op_ = roll < 95 ? Op::Read : Op::Update;
        break;
      case Mix::C:
        op_ = Op::Read;
        break;
      case Mix::D:
        op_ = roll < 95 ? Op::Read : Op::Insert;
        break;
      case Mix::E:
        op_ = roll < 95 ? Op::Scan : Op::Insert;
        break;
      case Mix::F:
        op_ = roll < 50 ? Op::Read : Op::ReadModifyWrite;
        break;
    }

    field_ = 0;
    switch (op_) {
      case Op::Insert:
        // Appends extend the keyspace; subsequent draws see the
        // new record.
        key_ = recordCount_++;
        zipf_.grow();
        refsLeftInOp_ = config_.fieldsPerOp;
        break;
      case Op::Scan:
        key_ = sampleKey();
        refsLeftInOp_ = 1 + rng_.nextBelow(config_.maxScanLen);
        break;
      case Op::Read:
        if (config_.mix == Mix::D) {
            // Latest-skewed: rank 0 is the most recent insert.
            const std::uint64_t rank = zipf_.next(rng_);
            key_ = recordCount_ - 1 - rank;
        } else {
            key_ = sampleKey();
        }
        refsLeftInOp_ = config_.fieldsPerOp;
        break;
      case Op::Update:
        key_ = sampleKey();
        refsLeftInOp_ = config_.fieldsPerOp;
        break;
      case Op::ReadModifyWrite:
        key_ = sampleKey();
        refsLeftInOp_ = config_.fieldsPerOp + 1;
        break;
    }
}

std::optional<MemoryReference>
YcsbWorkload::next()
{
    if (refsLeftInOp_ == 0)
        beginOp();
    --refsLeftInOp_;

    switch (op_) {
      case Op::Read:
        return emit(fieldAddr(key_, field_++), RefKind::Load);
      case Op::Update:
      case Op::Insert:
        return emit(fieldAddr(key_, field_++), RefKind::Store);
      case Op::Scan: {
        // One streaming access per scanned record.
        const Addr addr = fieldAddr(key_, 0);
        key_ = (key_ + 1) % recordCount_;
        return emit(addr, RefKind::Load);
      }
      case Op::ReadModifyWrite:
        // fieldsPerOp loads, then the write-back of field 0.
        if (refsLeftInOp_ == 0)
            return emit(fieldAddr(key_, 0), RefKind::Store);
        return emit(fieldAddr(key_, field_++), RefKind::Load);
    }
    return std::nullopt;
}

void
YcsbWorkload::reset()
{
    rng_ = initialRng_;
    zipf_ = initialZipf_;
    recordCount_ = config_.records;
    refsLeftInOp_ = 0;
    field_ = 0;
    key_ = 0;
}

std::unique_ptr<TraceSource>
YcsbWorkload::clone() const
{
    return std::make_unique<YcsbWorkload>(config_, initialRng_);
}

std::size_t
YcsbWorkload::fillBatch(MemoryReference *out, std::size_t max_refs)
{
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *YcsbWorkload::next();
    return max_refs;
}

} // namespace uatm
