/**
 * @file
 * Implementation of the instruction-fetch stream.
 */

#include "trace/ifetch.hh"

#include "util/logging.hh"

namespace uatm {

IFetchGenerator::IFetchGenerator(const IFetchConfig &config, Rng rng)
    : config_(config), rng_(rng), initialRng_(rng)
{
    UATM_ASSERT(config_.fetchBytes == 2 || config_.fetchBytes == 4 ||
                config_.fetchBytes == 8,
                "instruction size must be 2, 4 or 8 bytes");
    UATM_ASSERT(config_.meanRunLength >= 1,
                "run length must be at least one");
    UATM_ASSERT(config_.hotTargets >= 1,
                "need at least one branch target");
    UATM_ASSERT(config_.loopBackProbability >= 0.0 &&
                config_.loopBackProbability <= 1.0,
                "loop-back probability must be in [0, 1]");
    seedTargets();
}

void
IFetchGenerator::seedTargets()
{
    targets_.clear();
    targets_.reserve(config_.hotTargets);
    // Spread targets over the hot code region, one per mean run,
    // with a small odd jitter so targets do not alias in caches.
    Addr addr = config_.codeBase;
    Rng jitter = initialRng_;
    for (std::uint32_t i = 0; i < config_.hotTargets; ++i) {
        targets_.push_back(addr);
        addr += (config_.meanRunLength +
                 jitter.nextBelow(config_.meanRunLength + 1)) *
                config_.fetchBytes;
    }
    freshCode_ = addr + (1u << 20);
    pc_ = targets_.front();
    runLeft_ = config_.meanRunLength;
}

void
IFetchGenerator::takeBranch()
{
    if (rng_.nextBool(config_.loopBackProbability)) {
        pc_ = targets_[rng_.nextBelow(targets_.size())];
    } else {
        // Cold code: march forward so every fetch is compulsory.
        pc_ = freshCode_;
        freshCode_ +=
            (config_.meanRunLength + 1) * config_.fetchBytes * 4;
    }
    // Geometric-ish run length around the mean.
    runLeft_ = 1 + static_cast<std::uint32_t>(rng_.nextBelow(
                       2 * config_.meanRunLength));
}

std::optional<MemoryReference>
IFetchGenerator::next()
{
    MemoryReference ref;
    ref.addr = pc_;
    ref.size = static_cast<std::uint8_t>(config_.fetchBytes);
    ref.kind = RefKind::IFetch;
    ref.gap = 0;

    pc_ += config_.fetchBytes;
    if (runLeft_ == 0 || --runLeft_ == 0)
        takeBranch();
    return ref;
}

void
IFetchGenerator::reset()
{
    rng_ = initialRng_;
    seedTargets();
}

std::unique_ptr<TraceSource>
IFetchGenerator::clone() const
{
    return std::make_unique<IFetchGenerator>(config_, initialRng_);
}

IFetchInterleaver::IFetchInterleaver(
    std::unique_ptr<TraceSource> data, const IFetchConfig &config,
    Rng rng)
    : data_(std::move(data)), fetch_(config, rng)
{
    UATM_ASSERT(data_ != nullptr, "interleaver needs a data source");
}

std::optional<MemoryReference>
IFetchInterleaver::next()
{
    if (fetchesOwed_ == 0 && !held_) {
        auto data_ref = data_->next();
        if (!data_ref)
            return std::nullopt;
        // gap non-memory instructions + the load/store itself.
        fetchesOwed_ = data_ref->gap + 1;
        data_ref->gap = 0;
        held_ = *data_ref;
    }
    if (fetchesOwed_ > 0) {
        --fetchesOwed_;
        return fetch_.next();
    }
    auto out = held_;
    held_.reset();
    return out;
}

void
IFetchInterleaver::reset()
{
    data_->reset();
    fetch_.reset();
    fetchesOwed_ = 0;
    held_.reset();
}

std::unique_ptr<TraceSource>
IFetchInterleaver::clone() const
{
    auto data = data_->clone();
    if (!data)
        return nullptr;
    return std::make_unique<IFetchInterleaver>(
        std::move(data), fetch_.config(), fetch_.initialRng());
}

} // namespace uatm
