/**
 * @file
 * Instruction-fetch modelling (paper Sec. 3.4).
 *
 * The paper argues that with a high instruction-cache hit ratio
 * the X of Eq. 2 dominates, and that otherwise an (R_I/L) phi mu_m
 * term is added — the model keeping the same form either way.  To
 * exercise that claim, this module synthesises an instruction-
 * fetch stream (sequential runs broken by branches, most of which
 * return to a small pool of loop targets) and interleaves it with
 * a data-reference stream, producing a combined trace suitable for
 * unified-cache simulation or for measuring R_I directly.
 */

#ifndef UATM_TRACE_IFETCH_HH
#define UATM_TRACE_IFETCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace uatm {

/** Control-flow parameters of the synthetic instruction stream. */
struct IFetchConfig
{
    /** Base address of the code segment (kept disjoint from the
     *  data generators' heaps). */
    Addr codeBase = 0x40000000;

    /** Instruction size in bytes (RISC: 4). */
    std::uint32_t fetchBytes = 4;

    /** Mean sequential run length between branches. */
    std::uint32_t meanRunLength = 8;

    /** Number of distinct loop/branch targets in the hot code;
     *  footprint ~ hotTargets * meanRunLength * fetchBytes. */
    std::uint32_t hotTargets = 64;

    /** P(a branch goes to a hot target); the remainder jump to
     *  fresh code (compulsory I-misses — larger in the paper's
     *  multiprogramming discussion). */
    double loopBackProbability = 0.98;
};

/**
 * Standalone instruction-fetch reference stream.
 */
class IFetchGenerator : public TraceSource
{
  public:
    IFetchGenerator(const IFetchConfig &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

    const IFetchConfig &config() const { return config_; }

    /** The seed state the stream (re)starts from. */
    const Rng &initialRng() const { return initialRng_; }

  private:
    IFetchConfig config_;
    Rng rng_;
    Rng initialRng_;
    std::vector<Addr> targets_;
    Addr pc_;
    Addr freshCode_;
    std::uint32_t runLeft_;

    void seedTargets();
    void takeBranch();
};

/**
 * Interleaves instruction fetches with a data stream: each data
 * reference's gap instructions (plus the load/store itself) are
 * expanded into IFetch records followed by the data record, i.e.
 * the full reference stream a unified cache would see.  Gaps in
 * the emitted records are zero — the instruction count is carried
 * by the IFetch records themselves.
 */
class IFetchInterleaver : public TraceSource
{
  public:
    /**
     * @param data owned data-reference source
     * @param config control-flow parameters
     * @param rng   randomness for the fetch stream
     */
    IFetchInterleaver(std::unique_ptr<TraceSource> data,
                      const IFetchConfig &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;

    /** Clones the data stream from its beginning; nullptr when the
     *  data source is uncloneable. */
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::unique_ptr<TraceSource> data_;
    IFetchGenerator fetch_;
    /** IFetch records still owed before the held data record. */
    std::uint32_t fetchesOwed_ = 0;
    std::optional<MemoryReference> held_;
};

} // namespace uatm

#endif // UATM_TRACE_IFETCH_HH
