/**
 * @file
 * YCSB-style key-value workload generator.
 *
 * Models the six core YCSB mixes (A-F) as a memory-reference
 * stream: each operation picks a record by a zipfian or uniform
 * key distribution, maps the key to a record-sized address range,
 * and touches a few fields of it.  Inserts (mixes D and E) grow
 * the keyspace, and mix D reads with a latest-skewed distribution
 * so recently inserted records stay hot — the standard YCSB
 * semantics, reduced to the address behaviour the cache models
 * care about.
 *
 * The zipfian sampler is Gray et al.'s rejection-free inversion
 * (the same construction YCSB's ZipfianGenerator uses), with an
 * O(1) incremental domain extension for growing keyspaces.
 * Zipfian ranks are scattered over the keyspace with an FNV hash
 * (YCSB's "scrambled zipfian") so hot records are not physically
 * adjacent, which would otherwise overstate spatial locality.
 */

#ifndef UATM_TRACE_YCSB_HH
#define UATM_TRACE_YCSB_HH

#include <cstdint>
#include <memory>
#include <string_view>

#include "trace/generators.hh"
#include "trace/source.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace uatm {

/**
 * Zipfian rank sampler over [0, items): P(r) proportional to
 * 1/(r+1)^theta, theta in [0, 1).  Construction is O(items) (the
 * zeta sum); sampling is O(1); grow() extends the domain by one
 * item in O(1).
 */
class ZipfianSampler
{
  public:
    ZipfianSampler(std::uint64_t items, double theta);

    std::uint64_t items() const { return items_; }

    /** Draw one rank in [0, items()); rank 0 is the hottest. */
    std::uint64_t next(Rng &rng) const;

    /** Extend the domain to items() + 1. */
    void grow();

  private:
    std::uint64_t items_;
    double theta_;
    double zetan_;  ///< zeta(items, theta)
    double eta_;

    void refresh();
};

/**
 * YCSB A-F key-value access stream.  Endless; clone() rewinds.
 */
class YcsbWorkload : public TraceSource
{
  public:
    /** The six core YCSB workload mixes. */
    enum class Mix : std::uint8_t
    {
        A, ///< 50% read / 50% update (update heavy)
        B, ///< 95% read / 5% update (read mostly)
        C, ///< 100% read
        D, ///< 95% read-latest / 5% insert
        E, ///< 95% short scan / 5% insert
        F, ///< 50% read / 50% read-modify-write
    };

    /** "a".."f" (case-insensitive); ParseError otherwise. */
    static Expected<Mix> parseMix(std::string_view name);

    /** "a".."f". */
    static const char *mixName(Mix mix);

    struct Config
    {
        Mix mix = Mix::A;
        /** Records loaded before the run (inserts grow this). */
        std::uint64_t records = 100000;
        /** Zipfian skew; 0.99 is the YCSB default. */
        double theta = 0.99;
        /** false draws keys uniformly instead. */
        bool zipfian = true;
        Addr base = 0x40000000;
        /** Bytes per record (key -> base + key * recordBytes). */
        std::uint32_t recordBytes = 64;
        std::uint32_t accessSize = 8;
        /** Fields touched per read/update/insert operation. */
        std::uint32_t fieldsPerOp = 2;
        /** Scan length for mix E is uniform in [1, maxScanLen]. */
        std::uint32_t maxScanLen = 50;
        GapModel gap;
    };

    YcsbWorkload(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    enum class Op : std::uint8_t
    {
        Read,
        Update,
        Insert,
        Scan,
        ReadModifyWrite,
    };

    Config config_;
    Rng rng_;
    Rng initialRng_;
    ZipfianSampler zipf_;
    ZipfianSampler initialZipf_; ///< pre-insert state, for reset()
    std::uint64_t recordCount_;

    // In-flight operation state.
    Op op_ = Op::Read;
    std::uint64_t key_ = 0;
    std::uint32_t field_ = 0;
    std::uint64_t refsLeftInOp_ = 0;

    void beginOp();
    std::uint64_t sampleKey();
    Addr fieldAddr(std::uint64_t key, std::uint32_t field) const;
    MemoryReference emit(Addr addr, RefKind kind);
};

} // namespace uatm

#endif // UATM_TRACE_YCSB_HH
