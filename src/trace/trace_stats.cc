/**
 * @file
 * Implementation of the workload profiler.
 */

#include "trace/trace_stats.hh"

#include <sstream>

#include "util/logging.hh"

namespace uatm {

WorkloadProfile::WorkloadProfile(std::uint64_t footprint_block)
    : footprintBlock_(footprint_block)
{
    UATM_ASSERT(footprint_block != 0 &&
                (footprint_block & (footprint_block - 1)) == 0,
                "footprint block must be a power of two");
}

void
WorkloadProfile::add(const MemoryReference &ref)
{
    ++refs_;
    instructions_ += static_cast<std::uint64_t>(ref.gap) + 1;
    switch (ref.kind) {
      case RefKind::Load:
        ++loads_;
        break;
      case RefKind::Store:
        ++stores_;
        break;
      case RefKind::IFetch:
        break;
    }
    blocks_.insert(alignDown(ref.addr, footprintBlock_));
}

void
WorkloadProfile::consume(TraceSource &source, std::uint64_t max_refs)
{
    for (std::uint64_t i = 0; i < max_refs; ++i) {
        auto ref = source.next();
        if (!ref)
            break;
        add(*ref);
    }
}

std::uint64_t
WorkloadProfile::footprintBlocks() const
{
    return blocks_.size();
}

std::uint64_t
WorkloadProfile::footprintBytes() const
{
    return blocks_.size() * footprintBlock_;
}

double
WorkloadProfile::memoryReferenceDensity() const
{
    if (instructions_ == 0)
        return 0.0;
    return static_cast<double>(loads_ + stores_) /
           static_cast<double>(instructions_);
}

double
WorkloadProfile::storeFraction() const
{
    const std::uint64_t data = loads_ + stores_;
    if (data == 0)
        return 0.0;
    return static_cast<double>(stores_) / static_cast<double>(data);
}

std::string
WorkloadProfile::format(const std::string &name) const
{
    std::ostringstream os;
    os << "workload " << name << ":\n"
       << "  references       = " << refs_ << '\n'
       << "  loads            = " << loads_ << '\n'
       << "  stores           = " << stores_ << '\n'
       << "  instructions (E) = " << instructions_ << '\n'
       << "  footprint        = " << footprintBytes() << " bytes ("
       << footprintBlocks() << " x " << footprintBlock_ << "B)\n"
       << "  mem-ref density  = " << memoryReferenceDensity() << '\n'
       << "  store fraction   = " << storeFraction() << '\n';
    return os.str();
}

} // namespace uatm
