/**
 * @file
 * The memory-reference record that all trace producers emit and the
 * cache/CPU simulators consume.
 *
 * The paper's model (Sec. 3) characterises an application by the
 * instruction count E and its data-reference behaviour {R, W, alpha};
 * the trace format mirrors that: a stream of data references, each
 * carrying the number of non-memory instructions executed since the
 * previous reference, so E is recoverable and the one-cycle-per-
 * instruction assumption (paper assumption 4) can be applied.
 */

#ifndef UATM_TRACE_REF_HH
#define UATM_TRACE_REF_HH

#include <cstdint>

namespace uatm {

/** Address type: byte addresses in a flat physical space. */
using Addr = std::uint64_t;

/** Kind of a memory reference. */
enum class RefKind : std::uint8_t
{
    Load,   ///< data read
    Store,  ///< data write
    IFetch, ///< instruction fetch (only used by unified-cache studies)
};

/** Printable name of a reference kind. */
const char *refKindName(RefKind kind);

/**
 * One data memory reference plus the count of non-memory
 * instructions that execute before it.
 */
struct MemoryReference
{
    /** Byte address of the access. */
    Addr addr = 0;

    /** Non-memory instructions executed since the previous
     *  reference (paper assumption: each takes one cycle). */
    std::uint32_t gap = 0;

    /** Access size in bytes (1, 2, 4 or 8). */
    std::uint8_t size = 4;

    /** Load, store or instruction fetch. */
    RefKind kind = RefKind::Load;

    bool operator==(const MemoryReference &) const = default;
};

/** True when @p size is one of the architected access sizes. */
bool isValidAccessSize(std::uint8_t size);

/** Round @p addr down to a multiple of @p alignment (a power of 2). */
Addr alignDown(Addr addr, std::uint64_t alignment);

} // namespace uatm

#endif // UATM_TRACE_REF_HH
