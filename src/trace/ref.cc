/**
 * @file
 * Implementation of reference-record helpers.
 */

#include "trace/ref.hh"

#include "util/logging.hh"

namespace uatm {

const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::Load:
        return "load";
      case RefKind::Store:
        return "store";
      case RefKind::IFetch:
        return "ifetch";
    }
    panic("unknown RefKind value ", static_cast<int>(kind));
}

bool
isValidAccessSize(std::uint8_t size)
{
    return size == 1 || size == 2 || size == 4 || size == 8;
}

Addr
alignDown(Addr addr, std::uint64_t alignment)
{
    UATM_ASSERT(alignment != 0 && (alignment & (alignment - 1)) == 0,
                "alignment must be a power of two, got ", alignment);
    return addr & ~(alignment - 1);
}

} // namespace uatm
