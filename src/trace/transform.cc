/**
 * @file
 * Implementation of the trace transformations.
 */

#include "trace/transform.hh"

#include "util/logging.hh"

namespace uatm {

// --------------------------------------------------------------------
// OffsetSource
// --------------------------------------------------------------------

OffsetSource::OffsetSource(std::unique_ptr<TraceSource> inner,
                           std::int64_t offset_bytes)
    : inner_(std::move(inner)), offset_(offset_bytes)
{
    UATM_ASSERT(inner_ != nullptr, "offset needs a source");
}

std::optional<MemoryReference>
OffsetSource::next()
{
    auto ref = inner_->next();
    if (!ref)
        return std::nullopt;
    ref->addr = static_cast<Addr>(
        static_cast<std::int64_t>(ref->addr) + offset_);
    return ref;
}

void
OffsetSource::reset()
{
    inner_->reset();
}

std::unique_ptr<TraceSource>
OffsetSource::clone() const
{
    auto inner = inner_->clone();
    if (!inner)
        return nullptr;
    return std::make_unique<OffsetSource>(std::move(inner), offset_);
}

// --------------------------------------------------------------------
// SampleSource
// --------------------------------------------------------------------

SampleSource::SampleSource(std::unique_ptr<TraceSource> inner,
                           std::uint32_t period)
    : inner_(std::move(inner)), period_(period)
{
    UATM_ASSERT(inner_ != nullptr, "sampler needs a source");
    UATM_ASSERT(period_ >= 1, "sampling period must be >= 1");
}

std::optional<MemoryReference>
SampleSource::next()
{
    // Drop period-1 references, accumulating their instruction
    // counts (gap + the reference itself) into the survivor.
    std::uint64_t folded = 0;
    for (std::uint32_t i = 0; i + 1 < period_; ++i) {
        auto dropped = inner_->next();
        if (!dropped)
            break;
        folded += static_cast<std::uint64_t>(dropped->gap) + 1;
    }
    auto ref = inner_->next();
    if (!ref)
        return std::nullopt;
    const std::uint64_t gap =
        static_cast<std::uint64_t>(ref->gap) + folded;
    ref->gap = gap > 0xffffffffull
                   ? 0xffffffffu
                   : static_cast<std::uint32_t>(gap);
    return ref;
}

void
SampleSource::reset()
{
    inner_->reset();
}

std::unique_ptr<TraceSource>
SampleSource::clone() const
{
    auto inner = inner_->clone();
    if (!inner)
        return nullptr;
    return std::make_unique<SampleSource>(std::move(inner), period_);
}

// --------------------------------------------------------------------
// KindFilterSource
// --------------------------------------------------------------------

KindFilterSource::KindFilterSource(
    std::unique_ptr<TraceSource> inner, bool keep_loads,
    bool keep_stores, bool keep_ifetch)
    : inner_(std::move(inner)), keepLoads_(keep_loads),
      keepStores_(keep_stores), keepIFetch_(keep_ifetch)
{
    UATM_ASSERT(inner_ != nullptr, "filter needs a source");
    UATM_ASSERT(keep_loads || keep_stores || keep_ifetch,
                "the filter would drop everything");
}

std::optional<MemoryReference>
KindFilterSource::next()
{
    while (auto ref = inner_->next()) {
        const bool keep =
            (ref->kind == RefKind::Load && keepLoads_) ||
            (ref->kind == RefKind::Store && keepStores_) ||
            (ref->kind == RefKind::IFetch && keepIFetch_);
        if (keep)
            return ref;
    }
    return std::nullopt;
}

void
KindFilterSource::reset()
{
    inner_->reset();
}

std::unique_ptr<TraceSource>
KindFilterSource::clone() const
{
    auto inner = inner_->clone();
    if (!inner)
        return nullptr;
    return std::make_unique<KindFilterSource>(
        std::move(inner), keepLoads_, keepStores_, keepIFetch_);
}

// --------------------------------------------------------------------
// TimeSliceSource
// --------------------------------------------------------------------

TimeSliceSource::TimeSliceSource(
    std::vector<std::unique_ptr<TraceSource>> sources,
    std::uint64_t quantum, std::uint32_t switch_gap)
    : sources_(std::move(sources)), quantum_(quantum),
      switchGap_(switch_gap)
{
    UATM_ASSERT(!sources_.empty(), "time slicing needs programs");
    for (const auto &source : sources_)
        UATM_ASSERT(source != nullptr, "null program source");
    UATM_ASSERT(quantum_ >= 1, "quantum must be >= 1");
}

std::optional<MemoryReference>
TimeSliceSource::next()
{
    for (std::size_t attempts = 0; attempts <= sources_.size();
         ++attempts) {
        if (emitted_ >= quantum_) {
            emitted_ = 0;
            current_ = (current_ + 1) % sources_.size();
            pendingSwitch_ = true;
        }
        auto ref = sources_[current_]->next();
        if (!ref) {
            emitted_ = quantum_; // force rotation
            continue;
        }
        ++emitted_;
        if (pendingSwitch_) {
            // Charge the context-switch overhead to the first
            // reference of the new quantum.
            const std::uint64_t gap =
                static_cast<std::uint64_t>(ref->gap) + switchGap_;
            ref->gap = gap > 0xffffffffull
                           ? 0xffffffffu
                           : static_cast<std::uint32_t>(gap);
            pendingSwitch_ = false;
        }
        return ref;
    }
    return std::nullopt;
}

void
TimeSliceSource::reset()
{
    for (auto &source : sources_)
        source->reset();
    current_ = 0;
    emitted_ = 0;
    pendingSwitch_ = false;
}

std::unique_ptr<TraceSource>
TimeSliceSource::clone() const
{
    std::vector<std::unique_ptr<TraceSource>> copies;
    copies.reserve(sources_.size());
    for (const auto &source : sources_) {
        auto copy = source->clone();
        if (!copy)
            return nullptr;
        copies.push_back(std::move(copy));
    }
    return std::make_unique<TimeSliceSource>(std::move(copies),
                                             quantum_, switchGap_);
}

} // namespace uatm
