/**
 * @file
 * Synthetic workload generators.
 *
 * The paper obtained its stalling factors and hit ratios from
 * trace-driven simulation of six SPEC92 programs (nasa7, swm256,
 * wave5, ear, doduc, hydro2d; 50M instructions each).  Those traces
 * are not redistributable, so this module provides parametric
 * generators whose outputs span the same locality regimes:
 *
 *  - StrideGenerator / LoopNestGenerator: the dense-array spatial
 *    locality of the FP codes (nasa7, swm256, hydro2d);
 *  - WorkingSetGenerator: tunable temporal locality via an LRU-stack
 *    distance model, which pins the hit ratio of a given cache;
 *  - PointerChaseGenerator: the irregular access streams that make
 *    partially-stalling caches earn (or fail to earn) their keep;
 *  - PhaseMixGenerator: program phase behaviour.
 *
 * Figure 1's stalling factor depends on the distribution of the gap
 * between a miss and the next access to the in-flight line, which
 * these generators control directly (see DESIGN.md, substitutions).
 */

#ifndef UATM_TRACE_GENERATORS_HH
#define UATM_TRACE_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace uatm {

/**
 * Uniform-random gap model: non-memory instructions between
 * consecutive data references.
 */
struct GapModel
{
    /** Minimum gap (inclusive). */
    std::uint32_t min = 1;
    /** Maximum gap (inclusive). */
    std::uint32_t max = 3;

    /** Draw one gap. */
    std::uint32_t sample(Rng &rng) const;
};

/**
 * Endless walk over an array with a fixed stride.
 *
 * Models unit- and non-unit-stride vector sweeps (swm256-like).
 */
class StrideGenerator : public TraceSource
{
  public:
    struct Config
    {
        Addr base = 0x10000;             ///< array base address
        std::uint64_t elements = 1 << 16; ///< elements per pass
        std::uint32_t elemSize = 8;      ///< access size in bytes
        std::int64_t strideBytes = 8;    ///< distance between accesses
        double storeFraction = 0.25;     ///< P(reference is a store)
        GapModel gap;                    ///< inter-reference gaps
    };

    StrideGenerator(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    Config config_;
    Rng rng_;
    Rng initialRng_;
    std::uint64_t index_ = 0;
};

/**
 * Three-array dense kernel: per iteration, load A[i], load B[i],
 * store C[i], in row-major order over a 2-D iteration space, with a
 * configurable column stride (hydro2d/nasa7-like).
 */
class LoopNestGenerator : public TraceSource
{
  public:
    struct Config
    {
        /** Bases are deliberately staggered by non-power-of-two
         *  offsets so the three arrays do not alias to the same
         *  cache sets (as real allocators also avoid). */
        Addr baseA = 0x100000;
        Addr baseB = 0x504980;
        Addr baseC = 0x90a340;
        std::uint64_t rows = 256;
        std::uint64_t cols = 256;
        std::uint32_t elemSize = 8;
        /** true walks row-major (unit stride), false column-major. */
        bool rowMajor = true;
        GapModel gap;
    };

    LoopNestGenerator(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    Config config_;
    Rng rng_;
    Rng initialRng_;
    std::uint64_t row_ = 0;
    std::uint64_t col_ = 0;
    /** 0 = load A, 1 = load B, 2 = store C. */
    int leg_ = 0;

    Addr elementAddr(Addr base) const;
    void advanceIteration();
};

/**
 * Random pointer chase through a pool of nodes (doduc-like
 * irregular traffic).  Each step loads a node; with some
 * probability it also stores to it.
 */
class PointerChaseGenerator : public TraceSource
{
  public:
    struct Config
    {
        Addr base = 0x2000000;
        std::uint64_t nodes = 1 << 14;  ///< pool size
        std::uint32_t nodeSize = 64;    ///< bytes per node
        std::uint32_t accessSize = 8;
        double storeFraction = 0.1;
        /** Extra loads of adjacent fields in the same node
         *  (spatial locality inside a node). */
        std::uint32_t fieldsPerVisit = 2;
        GapModel gap;
    };

    PointerChaseGenerator(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    Config config_;
    Rng rng_;
    Rng initialRng_;
    std::vector<std::uint32_t> successor_; ///< random permutation
    std::uint64_t node_ = 0;
    std::uint32_t field_ = 0;

    void buildPermutation();
};

/**
 * LRU-stack-distance workload: references hit a managed stack of
 * line-granular addresses with geometrically decaying reuse
 * probability, so the hit ratio of a cache of a given size is
 * directly tunable via (stackDepth, decay, coldFraction).
 */
class WorkingSetGenerator : public TraceSource
{
  public:
    struct Config
    {
        Addr base = 0x4000000;
        /** Granularity at which reuse happens (typically a line). */
        std::uint32_t blockBytes = 32;
        /** Depth of the hot LRU stack. */
        std::size_t stackDepth = 512;
        /** Geometric decay of reuse probability with stack depth. */
        double decay = 0.99;
        /** P(reference starts a brand-new block: compulsory miss). */
        double coldFraction = 0.02;
        /** P(a new block is adjacent to the last new block, which
         *  creates spatial locality visible to larger lines). */
        double sequentialFraction = 0.7;
        std::uint32_t accessSize = 4;
        double storeFraction = 0.3;
        GapModel gap;
    };

    WorkingSetGenerator(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    Config config_;
    Rng rng_;
    Rng initialRng_;
    std::vector<Addr> stack_;  ///< most recent block at index 0
    Addr nextFresh_;           ///< bump allocator for new blocks
    Addr lastNew_ = 0;

    void seedStack();
    Addr takeNewBlock();
    void touch(Addr block);
};

/**
 * Cycles through a list of child generators, emitting a fixed
 * number of references from each before moving on, to model the
 * phase behaviour of real programs.
 */
class PhaseMixGenerator : public TraceSource
{
  public:
    struct Phase
    {
        std::unique_ptr<TraceSource> source;
        std::uint64_t length; ///< references per visit to this phase
    };

    explicit PhaseMixGenerator(std::vector<Phase> phases);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

    /** Clones every child from its beginning; nullptr when any
     *  child is itself uncloneable. */
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::vector<Phase> phases_;
    std::size_t current_ = 0;
    std::uint64_t emitted_ = 0;
};

/**
 * Multi-scale working-set mix whose cache-size -> hit-ratio curve
 * rises smoothly through the 4K-128K range, mirroring the Short &
 * Levy curve the paper's Example 1 quotes (8K ~ 91 %, 32K ~ 95.5 %).
 */
struct ShortLevyWorkload
{
    /** Build the mix; deterministic from the seed. */
    static std::unique_ptr<TraceSource> make(std::uint64_t seed);
};

/**
 * Named SPEC92-like workload profiles.
 *
 * Each profile is a PhaseMixGenerator tuned so an 8 KB 2-way
 * write-allocate cache with 32-byte lines sees a hit ratio in the
 * low-to-mid 90s, matching the regime of the paper's Figure 1 runs.
 */
struct Spec92Profile
{
    /** The six program names used in the paper's Figure 1. */
    static const std::vector<std::string> &names();

    /** Build the named profile; fatal() on an unknown name. */
    static std::unique_ptr<TraceSource> make(const std::string &name,
                                             std::uint64_t seed);
};

} // namespace uatm

#endif // UATM_TRACE_GENERATORS_HH
