/**
 * @file
 * Implementation of reuse-distance profiles and the synthesizing
 * generator.
 */

#include "trace/reuse_distance.hh"

#include <algorithm>
#include <cmath>

#include "obs/json.hh"
#include "util/logging.hh"

namespace uatm {

Status
ReuseProfile::validate() const
{
    if (weights.empty())
        return Status::invalidArgument(
            "reuse profile needs at least one weight");
    double total = coldWeight;
    if (!std::isfinite(coldWeight) || coldWeight < 0.0)
        return Status::invalidArgument(
            "reuse profile cold weight must be finite and >= 0");
    for (std::size_t d = 0; d < weights.size(); ++d) {
        if (!std::isfinite(weights[d]) || weights[d] < 0.0) {
            return Status::invalidArgument(
                "reuse profile weight[", d,
                "] must be finite and >= 0");
        }
        total += weights[d];
    }
    if (total <= 0.0)
        return Status::invalidArgument(
            "reuse profile has zero total mass");
    return Status();
}

void
ReuseProfile::normalize()
{
    double total = coldWeight;
    for (double w : weights)
        total += w;
    UATM_ASSERT(total > 0.0, "normalizing an all-zero profile");
    coldWeight /= total;
    for (double &w : weights)
        w /= total;
}

double
ReuseProfile::cdfAt(std::size_t assoc) const
{
    double sum = 0.0;
    for (std::size_t d = 0; d < assoc && d < weights.size(); ++d)
        sum += weights[d];
    return sum;
}

ReuseProfile
ReuseProfile::geometric(std::size_t depth, double decay,
                        double cold_fraction)
{
    UATM_ASSERT(depth >= 1, "geometric profile needs depth >= 1");
    UATM_ASSERT(decay > 0.0 && decay <= 1.0,
                "geometric decay must be in (0, 1], got ", decay);
    UATM_ASSERT(cold_fraction >= 0.0 && cold_fraction < 1.0,
                "cold fraction must be in [0, 1), got ",
                cold_fraction);
    ReuseProfile profile;
    profile.weights.resize(depth);
    double w = 1.0;
    double sum = 0.0;
    for (std::size_t d = 0; d < depth; ++d) {
        profile.weights[d] = w;
        sum += w;
        w *= decay;
    }
    // Scale the reuse mass so cold_fraction of the total is cold.
    const double reuse_mass = 1.0 - cold_fraction;
    for (double &weight : profile.weights)
        weight = weight / sum * reuse_mass;
    profile.coldWeight = cold_fraction;
    return profile;
}

Expected<ReuseProfile>
ReuseProfile::measure(TraceSource &source, std::uint64_t refs,
                      std::uint32_t line_bytes,
                      std::size_t max_depth)
{
    if (refs == 0)
        return Status::invalidArgument(
            "measuring a reuse profile needs refs > 0");
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        return Status::invalidArgument(
            "line bytes must be a power of two, got ", line_bytes);
    if (max_depth == 0)
        return Status::invalidArgument(
            "reuse profile depth must be >= 1");

    ReuseProfile profile;
    profile.weights.assign(max_depth, 0.0);

    std::vector<Addr> stack;
    std::uint64_t seen = 0;
    for (; seen < refs; ++seen) {
        const auto ref = source.next();
        if (!ref)
            break;
        const Addr line = ref->addr / line_bytes;
        const auto it =
            std::find(stack.begin(), stack.end(), line);
        if (it == stack.end()) {
            profile.coldWeight += 1.0;
            stack.insert(stack.begin(), line);
        } else {
            const auto distance = static_cast<std::size_t>(
                it - stack.begin());
            if (distance < max_depth)
                profile.weights[distance] += 1.0;
            else
                profile.coldWeight += 1.0;
            stack.erase(it);
            stack.insert(stack.begin(), line);
        }
        // Lines deeper than the profile can describe fold into
        // cold anyway; keep the stack (and the scan) bounded.
        if (stack.size() > max_depth)
            stack.pop_back();
    }
    if (seen == 0)
        return Status::invalidArgument(
            "source produced no references to measure");
    profile.normalize();
    return profile;
}

std::string
ReuseProfile::toJsonText() const
{
    obs::JsonWriter writer;
    writer.beginObject();
    writer.keyValue("cold", coldWeight);
    writer.key("weights");
    writer.beginArray();
    for (double w : weights)
        writer.value(w);
    writer.endArray();
    writer.endObject();
    return writer.str();
}

Expected<ReuseProfile>
ReuseProfile::fromJsonText(std::string_view text)
{
    const auto parsed = obs::parseJson(text);
    if (!parsed) {
        return Status::parseError("bad reuse profile JSON: ",
                                  parsed.error);
    }
    const obs::JsonValue &root = parsed.value;
    if (!root.isObject()) {
        return Status::parseError(
            "reuse profile JSON must be an object");
    }
    ReuseProfile profile;
    const obs::JsonValue *weights = root.find("weights");
    if (!weights || !weights->isArray()) {
        return Status::parseError(
            "reuse profile needs a \"weights\" array");
    }
    for (const auto &item : weights->items()) {
        if (!item.isNumber()) {
            return Status::parseError(
                "reuse profile weights must be numbers");
        }
        profile.weights.push_back(item.asNumber());
    }
    if (const obs::JsonValue *cold = root.find("cold")) {
        if (!cold->isNumber()) {
            return Status::parseError(
                "reuse profile \"cold\" must be a number");
        }
        profile.coldWeight = cold->asNumber();
    }
    const Status status = profile.validate();
    if (!status.ok())
        return status;
    return profile;
}

ReuseDistanceWorkload::ReuseDistanceWorkload(const Config &config,
                                             Rng rng)
    : config_(config), rng_(rng), initialRng_(rng),
      nextFreshLine_(config.base / config.lineBytes)
{
    okOrThrow(config_.profile.validate());
    UATM_ASSERT(config_.lineBytes != 0 &&
                    (config_.lineBytes &
                     (config_.lineBytes - 1)) == 0,
                "line bytes must be a power of two, got ",
                config_.lineBytes);
    UATM_ASSERT(isValidAccessSize(config_.accessSize),
                "bad access size ", config_.accessSize);
    UATM_ASSERT(config_.accessSize <= config_.lineBytes,
                "access size exceeds the line");
    UATM_ASSERT(config_.storeFraction >= 0.0 &&
                    config_.storeFraction <= 1.0,
                "store fraction must be in [0, 1]");

    cdf_.reserve(config_.profile.weights.size() + 1);
    double sum = config_.profile.coldWeight;
    cdf_.push_back(sum);
    for (double w : config_.profile.weights) {
        sum += w;
        cdf_.push_back(sum);
    }
    stack_.reserve(config_.profile.weights.size());
}

std::uint64_t
ReuseDistanceWorkload::takeLine()
{
    return nextFreshLine_++;
}

std::optional<MemoryReference>
ReuseDistanceWorkload::next()
{
    const double u = rng_.nextDouble() * cdf_.back();
    const auto slot = static_cast<std::size_t>(
        std::upper_bound(cdf_.begin(), cdf_.end(), u) -
        cdf_.begin());

    std::uint64_t line;
    if (slot == 0 || slot - 1 >= stack_.size()) {
        // Cold draw, or a reuse deeper than the stack currently
        // holds (only possible during warmup): a fresh line.
        line = takeLine();
    } else {
        const std::size_t distance = slot - 1;
        line = stack_[distance];
        stack_.erase(stack_.begin() +
                     static_cast<std::ptrdiff_t>(distance));
    }
    stack_.insert(stack_.begin(), line);
    if (stack_.size() > config_.profile.weights.size())
        stack_.pop_back();

    const std::uint32_t slots =
        config_.lineBytes / config_.accessSize;
    MemoryReference ref;
    ref.addr = line * config_.lineBytes +
               rng_.nextBelow(slots) * config_.accessSize;
    ref.size = static_cast<std::uint8_t>(config_.accessSize);
    ref.kind = rng_.nextBool(config_.storeFraction)
                   ? RefKind::Store
                   : RefKind::Load;
    ref.gap = config_.gap.sample(rng_);
    return ref;
}

void
ReuseDistanceWorkload::reset()
{
    rng_ = initialRng_;
    stack_.clear();
    nextFreshLine_ = config_.base / config_.lineBytes;
}

std::unique_ptr<TraceSource>
ReuseDistanceWorkload::clone() const
{
    return std::make_unique<ReuseDistanceWorkload>(config_,
                                                   initialRng_);
}

std::size_t
ReuseDistanceWorkload::fillBatch(MemoryReference *out,
                                 std::size_t max_refs)
{
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *ReuseDistanceWorkload::next();
    return max_refs;
}

} // namespace uatm
