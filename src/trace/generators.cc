/**
 * @file
 * Implementation of the synthetic workload generators.
 */

#include "trace/generators.hh"

#include <algorithm>

#include "util/logging.hh"

namespace uatm {

std::uint32_t
GapModel::sample(Rng &rng) const
{
    UATM_ASSERT(min <= max, "gap model has min > max");
    if (min == max)
        return min;
    return static_cast<std::uint32_t>(
        rng.nextInRange(min, max));
}

// --------------------------------------------------------------------
// StrideGenerator
// --------------------------------------------------------------------

StrideGenerator::StrideGenerator(const Config &config, Rng rng)
    : config_(config), rng_(rng), initialRng_(rng)
{
    UATM_ASSERT(config_.elements > 0, "stride array must be non-empty");
    UATM_ASSERT(isValidAccessSize(
                    static_cast<std::uint8_t>(config_.elemSize)),
                "bad element size ", config_.elemSize);
}

std::optional<MemoryReference>
StrideGenerator::next()
{
    MemoryReference ref;
    const std::uint64_t pos = index_ % config_.elements;
    const auto offset = static_cast<std::int64_t>(pos) *
                        config_.strideBytes;
    ref.addr = static_cast<Addr>(
        static_cast<std::int64_t>(config_.base) + offset);
    ref.addr = alignDown(ref.addr, config_.elemSize);
    ref.size = static_cast<std::uint8_t>(config_.elemSize);
    ref.kind = rng_.nextBool(config_.storeFraction) ? RefKind::Store
                                                    : RefKind::Load;
    ref.gap = config_.gap.sample(rng_);
    ++index_;
    return ref;
}

void
StrideGenerator::reset()
{
    rng_ = initialRng_;
    index_ = 0;
}

std::unique_ptr<TraceSource>
StrideGenerator::clone() const
{
    // Rebuild from (config, initial RNG): the clone replays from
    // the beginning even when this instance is mid-stream.
    return std::make_unique<StrideGenerator>(config_, initialRng_);
}

std::size_t
StrideGenerator::fillBatch(MemoryReference *out,
                           std::size_t max_refs)
{
    // Endless stream; the qualified call devirtualises next().
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *StrideGenerator::next();
    return max_refs;
}

// --------------------------------------------------------------------
// LoopNestGenerator
// --------------------------------------------------------------------

LoopNestGenerator::LoopNestGenerator(const Config &config, Rng rng)
    : config_(config), rng_(rng), initialRng_(rng)
{
    UATM_ASSERT(config_.rows > 0 && config_.cols > 0,
                "loop nest must have a non-empty iteration space");
}

Addr
LoopNestGenerator::elementAddr(Addr base) const
{
    const std::uint64_t linear =
        config_.rowMajor ? row_ * config_.cols + col_
                         : col_ * config_.rows + row_;
    return base + linear * config_.elemSize;
}

void
LoopNestGenerator::advanceIteration()
{
    if (++col_ >= config_.cols) {
        col_ = 0;
        if (++row_ >= config_.rows)
            row_ = 0;
    }
}

std::optional<MemoryReference>
LoopNestGenerator::next()
{
    MemoryReference ref;
    ref.size = static_cast<std::uint8_t>(config_.elemSize);
    ref.gap = config_.gap.sample(rng_);
    switch (leg_) {
      case 0:
        ref.addr = elementAddr(config_.baseA);
        ref.kind = RefKind::Load;
        leg_ = 1;
        break;
      case 1:
        ref.addr = elementAddr(config_.baseB);
        ref.kind = RefKind::Load;
        leg_ = 2;
        break;
      default:
        ref.addr = elementAddr(config_.baseC);
        ref.kind = RefKind::Store;
        leg_ = 0;
        advanceIteration();
        break;
    }
    return ref;
}

void
LoopNestGenerator::reset()
{
    rng_ = initialRng_;
    row_ = col_ = 0;
    leg_ = 0;
}

std::unique_ptr<TraceSource>
LoopNestGenerator::clone() const
{
    return std::make_unique<LoopNestGenerator>(config_, initialRng_);
}

std::size_t
LoopNestGenerator::fillBatch(MemoryReference *out,
                             std::size_t max_refs)
{
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *LoopNestGenerator::next();
    return max_refs;
}

// --------------------------------------------------------------------
// PointerChaseGenerator
// --------------------------------------------------------------------

PointerChaseGenerator::PointerChaseGenerator(const Config &config,
                                             Rng rng)
    : config_(config), rng_(rng), initialRng_(rng)
{
    UATM_ASSERT(config_.nodes >= 2, "chase pool needs >= 2 nodes");
    UATM_ASSERT(config_.accessSize <= config_.nodeSize,
                "access size exceeds node size");
    buildPermutation();
}

void
PointerChaseGenerator::buildPermutation()
{
    // Sattolo's algorithm yields a single cycle covering every node,
    // so the chase never collapses into a short loop.
    Rng perm_rng = initialRng_;
    successor_.resize(config_.nodes);
    std::vector<std::uint32_t> order(config_.nodes);
    for (std::uint64_t i = 0; i < config_.nodes; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = config_.nodes - 1; i > 0; --i) {
        const auto j = perm_rng.nextBelow(i);
        std::swap(order[i], order[j]);
    }
    for (std::uint64_t i = 0; i < config_.nodes; ++i)
        successor_[order[i]] = order[(i + 1) % config_.nodes];
}

std::optional<MemoryReference>
PointerChaseGenerator::next()
{
    MemoryReference ref;
    ref.size = static_cast<std::uint8_t>(config_.accessSize);
    ref.gap = config_.gap.sample(rng_);

    const Addr node_base =
        config_.base + static_cast<Addr>(node_) * config_.nodeSize;
    const std::uint32_t field_offset =
        (field_ * config_.accessSize) %
        std::max<std::uint32_t>(config_.nodeSize, config_.accessSize);
    ref.addr = alignDown(node_base + field_offset, config_.accessSize);
    ref.kind = rng_.nextBool(config_.storeFraction) ? RefKind::Store
                                                    : RefKind::Load;

    if (++field_ > config_.fieldsPerVisit) {
        field_ = 0;
        node_ = successor_[node_];
    }
    return ref;
}

void
PointerChaseGenerator::reset()
{
    rng_ = initialRng_;
    node_ = 0;
    field_ = 0;
}

std::unique_ptr<TraceSource>
PointerChaseGenerator::clone() const
{
    return std::make_unique<PointerChaseGenerator>(config_,
                                                   initialRng_);
}

std::size_t
PointerChaseGenerator::fillBatch(MemoryReference *out,
                                 std::size_t max_refs)
{
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *PointerChaseGenerator::next();
    return max_refs;
}

// --------------------------------------------------------------------
// WorkingSetGenerator
// --------------------------------------------------------------------

WorkingSetGenerator::WorkingSetGenerator(const Config &config, Rng rng)
    : config_(config), rng_(rng), initialRng_(rng),
      nextFresh_(config.base)
{
    UATM_ASSERT(config_.stackDepth >= 1, "stack depth must be >= 1");
    UATM_ASSERT(config_.decay > 0.0 && config_.decay < 1.0,
                "decay must be in (0, 1)");
    UATM_ASSERT(config_.coldFraction >= 0.0 &&
                config_.coldFraction <= 1.0,
                "cold fraction must be a probability");
    seedStack();
}

void
WorkingSetGenerator::seedStack()
{
    stack_.clear();
    stack_.reserve(config_.stackDepth);
    nextFresh_ = config_.base;
    for (std::size_t i = 0; i < config_.stackDepth; ++i) {
        stack_.push_back(nextFresh_);
        nextFresh_ += config_.blockBytes;
    }
    lastNew_ = stack_.back();
}

Addr
WorkingSetGenerator::takeNewBlock()
{
    Addr block;
    if (rng_.nextBool(config_.sequentialFraction)) {
        block = lastNew_ + config_.blockBytes;
    } else {
        block = nextFresh_;
        // Advance by a random, odd block count so scattered
        // allocations spread across all cache sets instead of
        // resonating with a power-of-two set count.
        nextFresh_ += (65 + 2 * rng_.nextBelow(32)) *
                      config_.blockBytes;
    }
    lastNew_ = block;
    return block;
}

void
WorkingSetGenerator::touch(Addr block)
{
    // Move-to-front; evict from the bottom when over capacity.
    auto it = std::find(stack_.begin(), stack_.end(), block);
    if (it != stack_.end())
        stack_.erase(it);
    stack_.insert(stack_.begin(), block);
    if (stack_.size() > config_.stackDepth)
        stack_.pop_back();
}

std::optional<MemoryReference>
WorkingSetGenerator::next()
{
    Addr block;
    if (rng_.nextBool(config_.coldFraction) || stack_.empty()) {
        block = takeNewBlock();
    } else {
        const std::size_t dist =
            rng_.nextStackDistance(stack_.size(), config_.decay);
        block = stack_[dist];
    }
    touch(block);

    MemoryReference ref;
    const std::uint64_t words =
        std::max<std::uint64_t>(config_.blockBytes /
                                    config_.accessSize, 1);
    ref.addr = block + rng_.nextBelow(words) * config_.accessSize;
    ref.size = static_cast<std::uint8_t>(config_.accessSize);
    ref.kind = rng_.nextBool(config_.storeFraction) ? RefKind::Store
                                                    : RefKind::Load;
    ref.gap = config_.gap.sample(rng_);
    return ref;
}

void
WorkingSetGenerator::reset()
{
    rng_ = initialRng_;
    seedStack();
}

std::unique_ptr<TraceSource>
WorkingSetGenerator::clone() const
{
    return std::make_unique<WorkingSetGenerator>(config_,
                                                 initialRng_);
}

std::size_t
WorkingSetGenerator::fillBatch(MemoryReference *out,
                               std::size_t max_refs)
{
    for (std::size_t i = 0; i < max_refs; ++i)
        out[i] = *WorkingSetGenerator::next();
    return max_refs;
}

// --------------------------------------------------------------------
// PhaseMixGenerator
// --------------------------------------------------------------------

PhaseMixGenerator::PhaseMixGenerator(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    UATM_ASSERT(!phases_.empty(), "phase mix needs at least one phase");
    for (const auto &phase : phases_) {
        UATM_ASSERT(phase.source != nullptr, "null phase source");
        UATM_ASSERT(phase.length > 0, "phase length must be positive");
    }
}

std::optional<MemoryReference>
PhaseMixGenerator::next()
{
    // A child may be finite; skip exhausted phases, giving each at
    // most one chance per call to avoid an infinite loop when all
    // children are exhausted.
    for (std::size_t attempts = 0; attempts < phases_.size();
         ++attempts) {
        Phase &phase = phases_[current_];
        if (emitted_ >= phase.length) {
            emitted_ = 0;
            current_ = (current_ + 1) % phases_.size();
            continue;
        }
        auto ref = phase.source->next();
        if (!ref) {
            emitted_ = 0;
            current_ = (current_ + 1) % phases_.size();
            continue;
        }
        ++emitted_;
        return ref;
    }
    return std::nullopt;
}

std::size_t
PhaseMixGenerator::fillBatch(MemoryReference *out,
                             std::size_t max_refs)
{
    std::size_t produced = 0;
    // Phase visits since the last emitted reference; next() gives
    // each reference at most phases_.size() of them, and matching
    // that exactly keeps fillBatch equivalent to repeated next()
    // even on quota boundaries and exhausted children.
    std::size_t attempts = 0;
    while (produced < max_refs && attempts < phases_.size()) {
        Phase &phase = phases_[current_];
        if (emitted_ >= phase.length) {
            emitted_ = 0;
            current_ = (current_ + 1) % phases_.size();
            ++attempts;
            continue;
        }
        const auto want = static_cast<std::size_t>(
            std::min<std::uint64_t>(phase.length - emitted_,
                                    max_refs - produced));
        const std::size_t got =
            phase.source->fillBatch(out + produced, want);
        produced += got;
        emitted_ += got;
        if (got > 0)
            attempts = 0;
        if (got < want) {
            // Child exhausted mid-run: advance, like next() would
            // on its next nullopt.
            emitted_ = 0;
            current_ = (current_ + 1) % phases_.size();
            ++attempts;
        }
    }
    return produced;
}

void
PhaseMixGenerator::reset()
{
    for (auto &phase : phases_)
        phase.source->reset();
    current_ = 0;
    emitted_ = 0;
}

std::unique_ptr<TraceSource>
PhaseMixGenerator::clone() const
{
    std::vector<Phase> copies;
    copies.reserve(phases_.size());
    for (const auto &phase : phases_) {
        auto child = phase.source->clone();
        if (!child)
            return nullptr;
        copies.push_back(Phase{std::move(child), phase.length});
    }
    return std::make_unique<PhaseMixGenerator>(std::move(copies));
}

// --------------------------------------------------------------------
// ShortLevyWorkload
// --------------------------------------------------------------------

std::unique_ptr<TraceSource>
ShortLevyWorkload::make(std::uint64_t seed)
{
    Rng rng(seed ^ 0x517a11e5c0ffee00ull);

    // Three working sets at ~3 KB / ~14 KB / ~83 KB footprints;
    // the phase weights put the knee of the hit-ratio curve in
    // the 8K-32K range, like the trace-driven curve of [14].
    WorkingSetGenerator::Config hot;
    hot.stackDepth = 96;
    hot.decay = 0.96;
    hot.coldFraction = 0.001;
    hot.storeFraction = 0.3;
    hot.gap = {1, 3};

    WorkingSetGenerator::Config mid;
    mid.base = 0x8000000;
    mid.stackDepth = 450;
    mid.decay = 0.994;
    mid.coldFraction = 0.002;
    mid.storeFraction = 0.3;
    mid.gap = {1, 3};

    WorkingSetGenerator::Config big;
    big.base = 0x10000000;
    big.stackDepth = 2600;
    big.decay = 0.9988;
    big.coldFraction = 0.002;
    big.storeFraction = 0.3;
    big.gap = {1, 3};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(PhaseMixGenerator::Phase{
        std::make_unique<WorkingSetGenerator>(hot, rng.fork()),
        1700});
    phases.push_back(PhaseMixGenerator::Phase{
        std::make_unique<WorkingSetGenerator>(mid, rng.fork()),
        120});
    phases.push_back(PhaseMixGenerator::Phase{
        std::make_unique<WorkingSetGenerator>(big, rng.fork()),
        80});
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

// --------------------------------------------------------------------
// Spec92Profile
// --------------------------------------------------------------------

const std::vector<std::string> &
Spec92Profile::names()
{
    static const std::vector<std::string> all = {
        "nasa7", "swm256", "wave5", "ear", "doduc", "hydro2d",
    };
    return all;
}

namespace {

/** Shorthand for building a phase. */
PhaseMixGenerator::Phase
phase(std::unique_ptr<TraceSource> src, std::uint64_t len)
{
    return PhaseMixGenerator::Phase{std::move(src), len};
}

std::unique_ptr<TraceSource>
makeNasa7(Rng &rng)
{
    // Dense matrix kernels: long unit-stride sweeps over several
    // large arrays plus a hot working set of reused blocks.
    LoopNestGenerator::Config nest;
    nest.rows = 200;
    nest.cols = 256;
    nest.elemSize = 8;
    nest.gap = {1, 3};

    WorkingSetGenerator::Config hot;
    hot.stackDepth = 160;
    hot.decay = 0.975;
    hot.coldFraction = 0.004;
    hot.storeFraction = 0.3;
    hot.gap = {1, 3};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<LoopNestGenerator>(
                               nest, rng.fork()), 6000));
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               hot, rng.fork()), 14000));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

std::unique_ptr<TraceSource>
makeSwm256(Rng &rng)
{
    // Shallow-water: stride-1 sweeps over a handful of 256x256
    // grids; very high spatial locality, modest temporal locality.
    StrideGenerator::Config sweep;
    sweep.elements = 256 * 256;
    sweep.elemSize = 8;
    sweep.strideBytes = 8;
    sweep.storeFraction = 0.33;
    sweep.gap = {1, 3};

    WorkingSetGenerator::Config hot;
    hot.stackDepth = 240;
    hot.decay = 0.985;
    hot.coldFraction = 0.002;
    hot.gap = {1, 2};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<StrideGenerator>(
                               sweep, rng.fork()), 4000));
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               hot, rng.fork()), 16000));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

std::unique_ptr<TraceSource>
makeWave5(Rng &rng)
{
    // Particle-in-cell: strided grid sweeps (non-unit stride) mixed
    // with scattered particle updates.
    StrideGenerator::Config grid;
    grid.elements = 1 << 15;
    grid.elemSize = 8;
    grid.strideBytes = 16; // two-field records, touch one field
    grid.storeFraction = 0.3;
    grid.gap = {1, 4};

    WorkingSetGenerator::Config particles;
    particles.stackDepth = 200;
    particles.decay = 0.97;
    particles.coldFraction = 0.006;
    particles.storeFraction = 0.4;
    particles.gap = {1, 3};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<StrideGenerator>(
                               grid, rng.fork()), 2000));
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               particles, rng.fork()), 14000));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

std::unique_ptr<TraceSource>
makeEar(Rng &rng)
{
    // Cochlea model: small hot working set, very high temporal
    // locality, few cold misses.
    WorkingSetGenerator::Config hot;
    hot.stackDepth = 120;
    hot.decay = 0.96;
    hot.coldFraction = 0.0015;
    hot.storeFraction = 0.25;
    hot.accessSize = 4;
    hot.gap = {2, 4};

    StrideGenerator::Config filt;
    filt.elements = 2048;
    filt.elemSize = 4;
    filt.strideBytes = 4;
    filt.storeFraction = 0.2;
    filt.gap = {2, 4};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               hot, rng.fork()), 15000));
    phases.push_back(phase(std::make_unique<StrideGenerator>(
                               filt, rng.fork()), 5000));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

std::unique_ptr<TraceSource>
makeDoduc(Rng &rng)
{
    // Monte-Carlo reactor code: irregular, branchy; pointer-chase
    // style traffic over a medium pool plus a hot scalar region.
    PointerChaseGenerator::Config chase;
    chase.nodes = 1 << 12;
    chase.nodeSize = 64;
    chase.accessSize = 8;
    chase.fieldsPerVisit = 3;
    chase.storeFraction = 0.15;
    chase.gap = {1, 4};

    WorkingSetGenerator::Config hot;
    hot.stackDepth = 100;
    hot.decay = 0.95;
    hot.coldFraction = 0.003;
    hot.storeFraction = 0.3;
    hot.gap = {1, 3};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<PointerChaseGenerator>(
                               chase, rng.fork()), 5000));
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               hot, rng.fork()), 11000));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

std::unique_ptr<TraceSource>
makeHydro2d(Rng &rng)
{
    // Hydrodynamics: column-major sweeps (bad stride) alternating
    // with row-major ones over 2-D grids.
    LoopNestGenerator::Config rows;
    rows.rows = 128;
    rows.cols = 512;
    rows.elemSize = 8;
    rows.rowMajor = true;
    rows.gap = {1, 2};

    LoopNestGenerator::Config cols;
    cols.rows = 128;
    cols.cols = 512;
    cols.elemSize = 8;
    cols.rowMajor = false;
    cols.gap = {1, 2};

    WorkingSetGenerator::Config hot;
    hot.stackDepth = 200;
    hot.decay = 0.98;
    hot.coldFraction = 0.003;
    hot.gap = {1, 2};

    std::vector<PhaseMixGenerator::Phase> phases;
    phases.push_back(phase(std::make_unique<LoopNestGenerator>(
                               rows, rng.fork()), 3600));
    phases.push_back(phase(std::make_unique<WorkingSetGenerator>(
                               hot, rng.fork()), 15600));
    phases.push_back(phase(std::make_unique<LoopNestGenerator>(
                               cols, rng.fork()), 600));
    return std::make_unique<PhaseMixGenerator>(std::move(phases));
}

} // namespace

std::unique_ptr<TraceSource>
Spec92Profile::make(const std::string &name, std::uint64_t seed)
{
    Rng rng(seed ^ 0xa1b2c3d4e5f60718ull);
    if (name == "nasa7")
        return makeNasa7(rng);
    if (name == "swm256")
        return makeSwm256(rng);
    if (name == "wave5")
        return makeWave5(rng);
    if (name == "ear")
        return makeEar(rng);
    if (name == "doduc")
        return makeDoduc(rng);
    if (name == "hydro2d")
        return makeHydro2d(rng);
    fatal("unknown SPEC92-like profile '", name, "'");
}

} // namespace uatm
