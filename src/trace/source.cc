/**
 * @file
 * Implementation of the trace container and source adaptors.
 */

#include "trace/source.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace uatm {

std::size_t
TraceSource::fillBatch(MemoryReference *out, std::size_t max_refs)
{
    std::size_t produced = 0;
    while (produced < max_refs) {
        auto ref = next();
        if (!ref)
            break;
        out[produced++] = *ref;
    }
    return produced;
}

std::vector<MemoryReference>
TraceSource::drain(std::size_t max_refs)
{
    std::vector<MemoryReference> out;
    out.reserve(max_refs);
    while (out.size() < max_refs) {
        auto ref = next();
        if (!ref)
            break;
        out.push_back(*ref);
    }
    return out;
}

Trace::Trace(std::vector<MemoryReference> refs)
    : refs_(std::move(refs))
{
}

void
Trace::append(const MemoryReference &ref)
{
    UATM_ASSERT(isValidAccessSize(ref.size),
                "invalid access size ", int(ref.size));
    refs_.push_back(ref);
}

const MemoryReference &
Trace::at(std::size_t i) const
{
    UATM_ASSERT(i < refs_.size(), "trace index ", i, " out of range");
    return refs_[i];
}

std::uint64_t
Trace::instructionCount() const
{
    std::uint64_t total = 0;
    for (const auto &ref : refs_)
        total += static_cast<std::uint64_t>(ref.gap) + 1;
    return total;
}

std::uint64_t
Trace::countKind(RefKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &ref : refs_)
        n += ref.kind == kind;
    return n;
}

std::optional<MemoryReference>
Trace::next()
{
    if (cursor_ >= refs_.size())
        return std::nullopt;
    return refs_[cursor_++];
}

std::unique_ptr<TraceSource>
Trace::clone() const
{
    // The copy starts rewound whatever this instance's cursor says.
    return std::make_unique<Trace>(refs_);
}

std::size_t
Trace::fillBatch(MemoryReference *out, std::size_t max_refs)
{
    const std::size_t available = refs_.size() - cursor_;
    const std::size_t count = std::min(max_refs, available);
    if (count > 0)
        std::memcpy(out, refs_.data() + cursor_,
                    count * sizeof(MemoryReference));
    cursor_ += count;
    return count;
}

LimitedSource::LimitedSource(TraceSource &source, std::uint64_t limit)
    : source_(source), limit_(limit)
{
}

std::optional<MemoryReference>
LimitedSource::next()
{
    if (emitted_ >= limit_)
        return std::nullopt;
    auto ref = source_.next();
    if (ref)
        ++emitted_;
    return ref;
}

void
LimitedSource::reset()
{
    source_.reset();
    emitted_ = 0;
}

} // namespace uatm
