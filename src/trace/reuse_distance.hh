/**
 * @file
 * Reuse-distance-driven trace synthesis.
 *
 * A ReuseProfile is a target LRU reuse-distance histogram at line
 * granularity: weights[d] is the (relative) probability that an
 * access touches the d-th most recently used line, plus a cold
 * weight for brand-new lines.  ReuseDistanceWorkload inverts the
 * histogram: it keeps an explicit LRU stack, samples a distance
 * from the target distribution per access, and touches that stack
 * slot — so the measured reuse-distance histogram of the emitted
 * stream converges to the target (exactly, once the stack is
 * warm), and a fully-associative LRU cache of size A sees a hit
 * ratio equal to the target CDF at A.  That makes the generator
 * directly verifiable against the Mattson stack-distance engine
 * (cache/stack_sim.hh): a setCounts={1} geometry grid measures
 * the same histogram the profile prescribes.
 *
 * Profiles come from three places: the geometric() constructor
 * (decaying reuse, a cold tail), a JSON document (inline or a
 * file written by an earlier run), or measure() over any other
 * TraceSource — which is how a measured workload's locality can
 * be replayed synthetically at a different scale.
 */

#ifndef UATM_TRACE_REUSE_DISTANCE_HH
#define UATM_TRACE_REUSE_DISTANCE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/generators.hh"
#include "trace/source.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace uatm {

/** Target reuse-distance histogram at line granularity. */
struct ReuseProfile
{
    /** weights[d]: relative P(reuse of the d-th MRU line). */
    std::vector<double> weights;

    /** Relative P(a brand-new line: a compulsory miss). */
    double coldWeight = 0.0;

    /** Stack depth the profile covers. */
    std::size_t depth() const { return weights.size(); }

    /** Finite, non-negative, positive total mass. */
    Status validate() const;

    /** Normalize to sum 1 (validate() must hold). */
    void normalize();

    /** CDF at @p assoc: fraction of accesses with distance
     *  < assoc, of a normalized profile. */
    double cdfAt(std::size_t assoc) const;

    /** Geometrically decaying reuse with a cold tail. */
    static ReuseProfile geometric(std::size_t depth, double decay,
                                  double cold_fraction);

    /**
     * Measure @p refs references of @p source at @p line_bytes
     * granularity.  Distances >= max_depth fold into the cold
     * weight (they are indistinguishable from compulsory misses
     * to any cache the profile can describe).  The result is
     * normalized.
     */
    static Expected<ReuseProfile> measure(TraceSource &source,
                                          std::uint64_t refs,
                                          std::uint32_t line_bytes,
                                          std::size_t max_depth);

    /** {"cold": c, "weights": [...]} */
    std::string toJsonText() const;

    /** Parse toJsonText()'s schema; ParseError on anything else. */
    static Expected<ReuseProfile> fromJsonText(std::string_view text);
};

/**
 * Synthesizes an endless stream matching a ReuseProfile.
 */
class ReuseDistanceWorkload : public TraceSource
{
  public:
    struct Config
    {
        ReuseProfile profile;
        Addr base = 0x4000000;
        /** Granularity at which reuse happens. */
        std::uint32_t lineBytes = 32;
        std::uint32_t accessSize = 4;
        double storeFraction = 0.3;
        GapModel gap;
    };

    ReuseDistanceWorkload(const Config &config, Rng rng);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    Config config_;
    Rng rng_;
    Rng initialRng_;
    std::vector<double> cdf_; ///< [cold, w0, w0+w1, ...]
    std::vector<Addr> stack_; ///< MRU line number at index 0
    std::uint64_t nextFreshLine_;

    std::uint64_t takeLine();
};

} // namespace uatm

#endif // UATM_TRACE_REUSE_DISTANCE_HH
