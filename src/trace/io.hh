/**
 * @file
 * Trace persistence: a dinero-style text format and a compact
 * binary format, so generated workloads can be captured, diffed and
 * replayed across machines.
 *
 * Readers return Expected<Trace>: malformed lines, bad magic, bad
 * access sizes and unreadable files come back as error Statuses the
 * caller can surface (a CLI fatal()s, a scenario kernel degrades to
 * an error row) instead of killing the process.
 */

#ifndef UATM_TRACE_IO_HH
#define UATM_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "trace/source.hh"
#include "util/status.hh"

namespace uatm {

/**
 * Text format, one reference per line:
 *
 *     <kind> <hex addr> <size> <gap>
 *
 * where kind is 'L', 'S' or 'I'.  Lines starting with '#' and blank
 * lines are ignored on read.
 */
struct TextTraceFormat
{
    /** Write @p trace to @p out. */
    static void write(const Trace &trace, std::ostream &out);

    /** Parse a trace; error Status on malformed input. */
    static Expected<Trace> read(std::istream &in);

    /** File-path conveniences. */
    static Status writeFile(const Trace &trace,
                            const std::string &path);
    static Expected<Trace> readFile(const std::string &path);
};

/**
 * Binary format: an 8-byte magic/version header followed by fixed
 * 14-byte little-endian records (addr:8, gap:4, size:1, kind:1).
 */
struct BinaryTraceFormat
{
    static void write(const Trace &trace, std::ostream &out);
    static Expected<Trace> read(std::istream &in);
    static Status writeFile(const Trace &trace,
                            const std::string &path);
    static Expected<Trace> readFile(const std::string &path);
};

} // namespace uatm

#endif // UATM_TRACE_IO_HH
