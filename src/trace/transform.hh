/**
 * @file
 * Composable trace transformations: address offsetting, reference
 * sampling, kind filtering and source concatenation.  These are
 * the plumbing for multiprogramming-style experiments (two
 * programs at disjoint address ranges time-sliced on one cache)
 * and for building custom workloads out of the bundled
 * generators without writing new ones.
 */

#ifndef UATM_TRACE_TRANSFORM_HH
#define UATM_TRACE_TRANSFORM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/source.hh"
#include "util/random.hh"

namespace uatm {

/** Adds a constant to every address (address-space placement). */
class OffsetSource : public TraceSource
{
  public:
    OffsetSource(std::unique_ptr<TraceSource> inner,
                 std::int64_t offset_bytes);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::unique_ptr<TraceSource> inner_;
    std::int64_t offset_;
};

/**
 * Keeps one reference in @p period, folding the dropped
 * references' instruction counts into the survivors' gaps so E is
 * preserved — the standard trace-sampling trick.
 */
class SampleSource : public TraceSource
{
  public:
    SampleSource(std::unique_ptr<TraceSource> inner,
                 std::uint32_t period);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::unique_ptr<TraceSource> inner_;
    std::uint32_t period_;
};

/** Passes through only references of the given kind(s). */
class KindFilterSource : public TraceSource
{
  public:
    KindFilterSource(std::unique_ptr<TraceSource> inner,
                     bool keep_loads, bool keep_stores,
                     bool keep_ifetch);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::unique_ptr<TraceSource> inner_;
    bool keepLoads_;
    bool keepStores_;
    bool keepIFetch_;
};

/**
 * Time-slices several sources in round-robin quanta with a
 * context-switch gap — a multiprogramming model (the regime the
 * paper's Sec. 3.4 notes raises instruction miss ratios).
 */
class TimeSliceSource : public TraceSource
{
  public:
    /**
     * @param sources the co-scheduled programs
     * @param quantum references per time slice
     * @param switch_gap extra non-memory instructions charged at
     *        each context switch
     */
    TimeSliceSource(
        std::vector<std::unique_ptr<TraceSource>> sources,
        std::uint64_t quantum, std::uint32_t switch_gap = 50);

    std::optional<MemoryReference> next() override;
    void reset() override;
    std::unique_ptr<TraceSource> clone() const override;

  private:
    std::vector<std::unique_ptr<TraceSource>> sources_;
    std::uint64_t quantum_;
    std::uint32_t switchGap_;
    std::size_t current_ = 0;
    std::uint64_t emitted_ = 0;
    bool pendingSwitch_ = false;
};

} // namespace uatm

#endif // UATM_TRACE_TRANSFORM_HH
