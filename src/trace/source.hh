/**
 * @file
 * Streaming trace-source interface and the in-memory trace container.
 *
 * Simulation runs of hundreds of millions of references should not
 * require materialising the trace, so generators implement a pull
 * interface; small traces for tests use the Trace container.
 */

#ifndef UATM_TRACE_SOURCE_HH
#define UATM_TRACE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "trace/ref.hh"

namespace uatm {

/**
 * Pull-based producer of memory references.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Next reference, or nullopt when the source is exhausted. */
    virtual std::optional<MemoryReference> next() = 0;

    /** Restart the source from the beginning. */
    virtual void reset() = 0;

    /**
     * An independent source that replays the identical stream *from
     * the beginning* — regardless of how far this instance has been
     * consumed.  This is what lets a parallel runner hand every
     * shard its own deterministically reseeded copy of one
     * workload.  Note the rewound semantics: a raw copy of a used
     * generator would resume mid-stream with mutated RNG state,
     * which is exactly the cloning bug clone() exists to prevent.
     *
     * Sources that borrow external state they cannot duplicate
     * return nullptr (e.g. LimitedSource).
     */
    virtual std::unique_ptr<TraceSource> clone() const
    {
        return nullptr;
    }

    /**
     * Fill @p out with up to @p max_refs references, returning the
     * number written — short only when the source is exhausted at
     * that point.  Exactly equivalent to max_refs next() calls
     * (the property suite holds every implementation to that), but
     * overridable so hot consumers like the stack-distance engine
     * skip the per-reference virtual call.  Mixing fillBatch and
     * next() on one source is allowed.
     */
    virtual std::size_t fillBatch(MemoryReference *out,
                                  std::size_t max_refs);

    /**
     * Drain up to @p max_refs references into a vector.  Useful for
     * tests and for capturing a generator's output to disk.
     */
    std::vector<MemoryReference> drain(std::size_t max_refs);
};

/**
 * An in-memory trace; doubles as a TraceSource for replay.
 */
class Trace : public TraceSource
{
  public:
    Trace() = default;
    explicit Trace(std::vector<MemoryReference> refs);

    /** Append one reference. */
    void append(const MemoryReference &ref);

    std::size_t size() const { return refs_.size(); }
    bool empty() const { return refs_.empty(); }
    const MemoryReference &at(std::size_t i) const;
    const std::vector<MemoryReference> &refs() const { return refs_; }

    /** Total instruction count E implied by the trace
     *  (every reference is itself one instruction). */
    std::uint64_t instructionCount() const;

    /** Number of Load / Store / IFetch records respectively. */
    std::uint64_t countKind(RefKind kind) const;

    std::optional<MemoryReference> next() override;
    void reset() override { cursor_ = 0; }
    std::unique_ptr<TraceSource> clone() const override;
    std::size_t fillBatch(MemoryReference *out,
                          std::size_t max_refs) override;

  private:
    std::vector<MemoryReference> refs_;
    std::size_t cursor_ = 0;
};

/**
 * Caps another source at a fixed number of references.  Generators
 * are typically endless; benchmarks wrap them in a LimitedSource.
 */
class LimitedSource : public TraceSource
{
  public:
    /** @param source borrowed; must outlive this wrapper. */
    LimitedSource(TraceSource &source, std::uint64_t limit);

    std::optional<MemoryReference> next() override;
    void reset() override;

  private:
    TraceSource &source_;
    std::uint64_t limit_;
    std::uint64_t emitted_ = 0;
};

} // namespace uatm

#endif // UATM_TRACE_SOURCE_HH
