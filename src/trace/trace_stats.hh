/**
 * @file
 * Workload characterisation: summarises a reference stream in the
 * paper's own vocabulary (loads, stores, instruction count, memory
 * reference density) plus footprint measures used when tuning the
 * SPEC92-like profiles.
 */

#ifndef UATM_TRACE_TRACE_STATS_HH
#define UATM_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <string>
#include <unordered_set>

#include "trace/source.hh"

namespace uatm {

/**
 * Accumulates per-reference statistics; feed it a stream, then read
 * the summary fields.
 */
class WorkloadProfile
{
  public:
    /** Granularity for the footprint measure (bytes, power of 2). */
    explicit WorkloadProfile(std::uint64_t footprint_block = 32);

    /** Fold one reference into the profile. */
    void add(const MemoryReference &ref);

    /** Consume up to @p max_refs references from @p source. */
    void consume(TraceSource &source, std::uint64_t max_refs);

    std::uint64_t references() const { return refs_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }

    /** Total instructions E (gaps + the references themselves). */
    std::uint64_t instructions() const { return instructions_; }

    /** Distinct footprint blocks touched. */
    std::uint64_t footprintBlocks() const;

    /** Footprint in bytes. */
    std::uint64_t footprintBytes() const;

    /** Fraction of instructions that are loads/stores. */
    double memoryReferenceDensity() const;

    /** stores / (loads + stores). */
    double storeFraction() const;

    /** Multi-line human-readable summary. */
    std::string format(const std::string &name) const;

  private:
    std::uint64_t footprintBlock_;
    std::uint64_t refs_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t instructions_ = 0;
    std::unordered_set<Addr> blocks_;
};

} // namespace uatm

#endif // UATM_TRACE_TRACE_STATS_HH
