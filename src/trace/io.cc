/**
 * @file
 * Implementation of the trace file formats.
 */

#include "trace/io.hh"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace uatm {

namespace {

char
kindToChar(RefKind kind)
{
    switch (kind) {
      case RefKind::Load:
        return 'L';
      case RefKind::Store:
        return 'S';
      case RefKind::IFetch:
        return 'I';
    }
    panic("unknown RefKind");
}

Expected<RefKind>
charToKind(char c)
{
    switch (c) {
      case 'L':
        return RefKind::Load;
      case 'S':
        return RefKind::Store;
      case 'I':
        return RefKind::IFetch;
      default:
        return Status::parseError("bad reference kind character '", c,
                                  "' in trace");
    }
}

constexpr std::uint64_t kBinaryMagic = 0x5541544d54524331ull; // UATMTRC1

} // namespace

void
TextTraceFormat::write(const Trace &trace, std::ostream &out)
{
    out << "# uatm text trace, " << trace.size() << " references\n";
    for (const auto &ref : trace.refs()) {
        out << kindToChar(ref.kind) << ' ' << std::hex << ref.addr
            << std::dec << ' ' << unsigned(ref.size) << ' '
            << ref.gap << '\n';
    }
}

Expected<Trace>
TextTraceFormat::read(std::istream &in)
{
    Trace trace;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        char kind_char = 0;
        std::uint64_t addr = 0;
        unsigned size = 0;
        std::uint32_t gap = 0;
        ls >> kind_char >> std::hex >> addr >> std::dec >> size >> gap;
        if (!ls) {
            return Status::parseError("malformed trace line ", lineno,
                                      ": '", line, "'");
        }
        if (!isValidAccessSize(static_cast<std::uint8_t>(size))) {
            return Status::parseError("bad access size ", size,
                                      " on trace line ", lineno);
        }
        auto kind = charToKind(kind_char);
        if (!kind.ok())
            return kind.status();
        MemoryReference ref;
        ref.kind = kind.value();
        ref.addr = addr;
        ref.size = static_cast<std::uint8_t>(size);
        ref.gap = gap;
        trace.append(ref);
    }
    return trace;
}

Status
TextTraceFormat::writeFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::out);
    if (!out) {
        return Status::ioError("cannot open trace file '", path,
                               "' for writing");
    }
    write(trace, out);
    return Status();
}

Expected<Trace>
TextTraceFormat::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in);
    if (!in) {
        return Status::ioError("cannot open trace file '", path,
                               "' for reading");
    }
    return read(in);
}

void
BinaryTraceFormat::write(const Trace &trace, std::ostream &out)
{
    std::uint64_t magic = kBinaryMagic;
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    std::uint64_t count = trace.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &ref : trace.refs()) {
        std::array<char, 14> record{};
        std::memcpy(record.data(), &ref.addr, 8);
        std::memcpy(record.data() + 8, &ref.gap, 4);
        record[12] = static_cast<char>(ref.size);
        record[13] = static_cast<char>(ref.kind);
        out.write(record.data(), record.size());
    }
}

Expected<Trace>
BinaryTraceFormat::read(std::istream &in)
{
    std::uint64_t magic = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    if (!in || magic != kBinaryMagic)
        return Status::parseError("not a uatm binary trace (bad magic)");
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        return Status::parseError("truncated binary trace header");
    Trace trace;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::array<char, 14> record{};
        in.read(record.data(), record.size());
        if (!in)
            return Status::parseError("truncated binary trace at record ",
                                      i);
        MemoryReference ref;
        std::memcpy(&ref.addr, record.data(), 8);
        std::memcpy(&ref.gap, record.data() + 8, 4);
        ref.size = static_cast<std::uint8_t>(record[12]);
        const auto kind_raw = static_cast<std::uint8_t>(record[13]);
        if (kind_raw > static_cast<std::uint8_t>(RefKind::IFetch)) {
            return Status::parseError(
                "bad reference kind in binary trace record ", i);
        }
        ref.kind = static_cast<RefKind>(kind_raw);
        if (!isValidAccessSize(ref.size)) {
            return Status::parseError(
                "bad access size in binary trace record ", i);
        }
        trace.append(ref);
    }
    return trace;
}

Status
BinaryTraceFormat::writeFile(const Trace &trace,
                             const std::string &path)
{
    std::ofstream out(path, std::ios::out | std::ios::binary);
    if (!out) {
        return Status::ioError("cannot open trace file '", path,
                               "' for writing");
    }
    write(trace, out);
    return Status();
}

Expected<Trace>
BinaryTraceFormat::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::in | std::ios::binary);
    if (!in) {
        return Status::ioError("cannot open trace file '", path,
                               "' for reading");
    }
    return read(in);
}

} // namespace uatm
