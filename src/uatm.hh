/**
 * @file
 * Umbrella header: the full public API of the uatm library.
 *
 * Fine-grained headers remain available (and are preferred inside
 * the library itself); this header is a convenience for
 * downstream users:
 *
 * @code
 *   #include "uatm.hh"
 *
 *   uatm::TradeoffContext ctx;
 *   ctx.machine.cycleTime = 8;
 *   double r = uatm::missFactorDoubleBus(ctx);
 * @endcode
 */

#ifndef UATM_UATM_HH
#define UATM_UATM_HH

// Utilities.
#include "util/ascii_chart.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/status.hh"
#include "util/table.hh"

// Workload substrate.
#include "trace/generators.hh"
#include "trace/ifetch.hh"
#include "trace/io.hh"
#include "trace/ref.hh"
#include "trace/source.hh"
#include "trace/trace_stats.hh"
#include "trace/transform.hh"

// Cache substrate.
#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/replacement.hh"
#include "cache/sweep.hh"
#include "cache/victim.hh"

// Memory-system substrate.
#include "memory/timing.hh"
#include "memory/write_buffer.hh"

// Timing engine.
#include "cpu/phi_measurement.hh"
#include "cpu/stall_feature.hh"
#include "cpu/timing_engine.hh"

// The tradeoff methodology.
#include "core/equivalence.hh"
#include "core/execution_time.hh"
#include "core/machine.hh"
#include "core/size_model.hh"
#include "core/superscalar.hh"
#include "core/tradeoff.hh"
#include "core/workload.hh"

// Line-size arm.
#include "linesize/cost_model.hh"
#include "linesize/delay_model.hh"
#include "linesize/line_tradeoff.hh"
#include "linesize/miss_table.hh"

// Experiment layer: scenarios, the parallel runner, result tables.
#include "exp/result_table.hh"
#include "exp/runner.hh"
#include "exp/scenario.hh"
#include "exp/scenarios.hh"
#include "exp/workload_spec.hh"

#endif // UATM_UATM_HH
